// Package journal implements Prudentia's write-ahead trial journal: an
// append-only, CRC-framed, fsynced log of every trial attempt the
// scheduler completes. The checkpoint (internal/core) is flushed at
// pair granularity, so a crash between flushes loses every trial of the
// in-flight pair; the journal closes that gap. With both artifacts, a
// `kill -9` loses at most the single trial that was executing when the
// process died — resume replays journaled attempts without re-running
// their simulations and re-runs only what is genuinely missing.
//
// # Format: prudentia.journal/1
//
// A journal is a sequence of length-prefixed, checksummed frames:
//
//	+------------+------------+--------------------+
//	| len uint32 | crc uint32 | payload (len bytes)|
//	| big-endian | IEEE(payload)                   |
//	+------------+------------+--------------------+
//
// The first frame's payload is the header record
// {"schema":"prudentia.journal/1"}; every subsequent payload is one
// JSON-encoded Entry. Appends are fsynced before they are acknowledged,
// so an acknowledged record survives power loss.
//
// Recovery scans frames from the start and stops at the first frame
// that is short (torn by a crash mid-append) or whose CRC does not
// match (tail corruption or a bit flip); the file is truncated back to
// the last whole valid frame and appending resumes there. Everything
// before the truncation point is intact — CRC verification means a
// corrupt middle cannot be silently replayed as good data; it becomes
// the new tail.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Schema identifies the journal format; bump on breaking change. The
// frame container (length+CRC) is stable across versions — only the
// payload schema is versioned — so this build can always read a future
// journal's header far enough to refuse it cleanly.
const Schema = "prudentia.journal/1"

// schemaPrefix and schemaVersion decompose Schema for forward-compat
// checks.
const (
	schemaPrefix  = "prudentia.journal/"
	schemaVersion = 1
)

// ErrFutureVersion marks a journal written by a newer schema version
// than this build understands. Callers must treat it as a hard error:
// silently degrading to a fresh journal would fork the trial history
// that a newer binary still considers authoritative.
var ErrFutureVersion = errors.New("journal schema is newer than this build")

// checkSchema validates a recovered header schema, distinguishing a
// future version (upgrade the binary) from a foreign file.
func checkSchema(path, got string) error {
	if got == Schema {
		return nil
	}
	if v, ok := strings.CutPrefix(got, schemaPrefix); ok {
		if n, err := strconv.Atoi(v); err == nil && n > schemaVersion {
			return fmt.Errorf("journal: %s is %q, newer than this build's %q: %w (upgrade the binary or move the journal aside)",
				path, got, Schema, ErrFutureVersion)
		}
	}
	return fmt.Errorf("journal: %s is not a %s file", path, Schema)
}

// frameHeader is the per-record overhead: 4-byte length + 4-byte CRC.
const frameHeader = 8

// maxRecord bounds a single payload so a corrupt length prefix cannot
// demand an absurd allocation during recovery.
const maxRecord = 16 << 20

// File is the journal's storage seam: the subset of *os.File the writer
// and recovery paths touch. Production code passes the file itself;
// chaos tests pass a fault-injecting wrapper (chaos.FaultyFile) so the
// sticky-degrade and torn-tail recovery paths run under injected disk
// misbehavior instead of being trusted on faith.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Close() error
}

// WrapFunc turns a freshly opened journal file into the File the writer
// uses. nil means "use the file as-is".
type WrapFunc func(*os.File) File

func wrapOrSelf(f *os.File, wrap WrapFunc) File {
	if wrap == nil {
		return f
	}
	return wrap(f)
}

// Entry is one journaled trial attempt. Seed is the replay key: every
// trial seed is a pure function of (BaseSeed, experiment identity,
// attempt), so a resumed cycle asks the journal "do you already know
// seed S?" before simulating. Pair and Attempt are carried for humans
// and post-mortem tooling, not for lookup.
type Entry struct {
	// Seed is the trial seed — the unique replay key.
	Seed uint64 `json:"seed"`
	// Pair labels the experiment ("A vs B", "A (solo)", "A (canary)").
	Pair string `json:"pair,omitempty"`
	// Attempt is the per-experiment attempt index the seed derives from.
	Attempt int `json:"attempt"`
	// Kind classifies the attempt outcome: "ok" (counted trial),
	// "discard" (noise-discarded), "corrupt" (validity-gate rejection),
	// or "fail" (error or recovered panic).
	Kind string `json:"kind"`
	// Result carries the caller's serialized trial result for "ok" and
	// "discard" entries (the journal does not interpret it).
	Result json.RawMessage `json:"result,omitempty"`
	// Detail carries the validity error for "corrupt" and the failure
	// message for "fail".
	Detail string `json:"detail,omitempty"`
	// FailKind is the typed failure class for "fail" entries
	// ("panic", "error", "reap", "brownout", ...).
	FailKind string `json:"fail_kind,omitempty"`
	// SimSeconds preserves the simulated duration for entries whose
	// Result is not stored (corrupt results can hold NaN, which JSON
	// cannot carry), so replay feeds histograms identically.
	SimSeconds float64 `json:"sim_seconds,omitempty"`
}

// header is the first frame of every journal.
type header struct {
	Schema string `json:"schema"`
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Entries are the intact records, in append order.
	Entries []Entry
	// TornBytes is how many trailing bytes were truncated (0 for a
	// clean journal).
	TornBytes int64
	// Truncated reports whether a torn or corrupt tail was removed.
	Truncated bool
}

// Writer appends framed, fsynced entries to a journal file. It is safe
// for concurrent use; a nil *Writer is a no-op whose Append reports
// nothing written. Write errors are sticky: after the first failure
// every Append returns the same error without touching the file, so a
// watchdog with a broken disk degrades to unjournaled operation instead
// of dying.
type Writer struct {
	mu      sync.Mutex
	f       File
	records int64
	bytes   int64
	err     error
}

// Stats returns the records and bytes appended by this writer (not
// counting what recovery found already on disk).
func (w *Writer) Stats() (records, bytes int64) {
	if w == nil {
		return 0, 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.bytes
}

// Err returns the sticky write error, if any.
func (w *Writer) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Frame encodes one payload as a length-prefixed CRC32 journal frame —
// the container every prudentia on-disk log shares (trial journal,
// fleet protocol, submission WAL). Exported so sibling WALs reuse the
// exact framing instead of reimplementing it.
func Frame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return buf
}

// syncDir fsyncs a directory so a just-created or just-truncated file's
// metadata survives power loss. Errors are returned for the caller to
// decide; some filesystems reject directory fsync, which callers treat
// as best-effort.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Create makes a new journal at path (truncating any previous one),
// writes the schema header, and fsyncs both the file and its directory
// before returning.
func Create(path string) (*Writer, error) { return CreateWrapped(path, nil) }

// CreateWrapped is Create with a storage wrapper: the freshly opened
// file is passed through wrap (nil = none) before the header is
// written, so fault-injecting wrappers see every byte the journal ever
// writes, header included.
func CreateWrapped(path string, wrap WrapFunc) (*Writer, error) {
	raw, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", path, err)
	}
	f := wrapOrSelf(raw, wrap)
	hdr, err := json.Marshal(header{Schema: Schema})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: marshal header: %w", err)
	}
	if _, err := f.Write(Frame(hdr)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync header: %w", err)
	}
	// Directory fsync is what makes the file itself durable (the
	// rename/creation lives in the directory's data blocks).
	_ = syncDir(filepath.Dir(path))
	return &Writer{f: f}, nil
}

// Open recovers the journal at path and positions a writer at its end.
// A missing file is created fresh. A torn or corrupt tail is truncated
// (and the truncation fsynced) before appending resumes; the returned
// Recovery reports the intact entries and how much was cut.
func Open(path string) (*Writer, Recovery, error) { return OpenWrapped(path, nil) }

// OpenWrapped is Open with a storage wrapper (see CreateWrapped): both
// the recovery repair (truncation, sync) and all subsequent appends go
// through the wrapped file.
func OpenWrapped(path string, wrap WrapFunc) (*Writer, Recovery, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		w, cerr := CreateWrapped(path, wrap)
		return w, Recovery{}, cerr
	}
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("journal: read %s: %w", path, err)
	}
	payloads, good := ScanFrames(data)
	if len(payloads) == 0 {
		// Not even a whole header frame: the file carries no intact
		// records, so rebuilding from scratch loses nothing.
		w, cerr := CreateWrapped(path, wrap)
		if cerr != nil {
			return nil, Recovery{}, cerr
		}
		return w, Recovery{TornBytes: int64(len(data)), Truncated: len(data) > 0}, nil
	}
	var hdr header
	if err := json.Unmarshal(payloads[0], &hdr); err != nil {
		return nil, Recovery{}, fmt.Errorf("journal: %s is not a %s file", path, Schema)
	}
	if err := checkSchema(path, hdr.Schema); err != nil {
		return nil, Recovery{}, err
	}
	rec := Recovery{}
	for i, p := range payloads[1:] {
		var e Entry
		if err := json.Unmarshal(p, &e); err != nil {
			// A frame that passes CRC but does not parse marks the end
			// of the trustworthy prefix; cut from here.
			good = frameOffset(data, i+1)
			break
		}
		rec.Entries = append(rec.Entries, e)
	}
	rec.TornBytes = int64(len(data)) - good
	rec.Truncated = rec.TornBytes > 0

	raw, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("journal: reopen %s: %w", path, err)
	}
	f := wrapOrSelf(raw, wrap)
	if rec.Truncated {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, Recovery{}, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, Recovery{}, fmt.Errorf("journal: sync truncation of %s: %w", path, err)
		}
		_ = syncDir(filepath.Dir(path))
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, Recovery{}, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	return &Writer{f: f}, rec, nil
}

// ScanFrames walks data frame by frame, returning the intact payloads
// and the byte offset of the end of the last intact frame — the
// truncation point recovery cuts a torn or corrupt tail back to.
// Exported (with Frame) as the shared recovery scanner for every
// prudentia framed log.
func ScanFrames(data []byte) (payloads [][]byte, good int64) {
	off := 0
	for {
		if off+frameHeader > len(data) {
			return payloads, int64(off)
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if n > maxRecord || off+frameHeader+n > len(data) {
			return payloads, int64(off)
		}
		want := binary.BigEndian.Uint32(data[off+4 : off+8])
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != want {
			return payloads, int64(off)
		}
		payloads = append(payloads, payload)
		off += frameHeader + n
	}
}

// frameOffset returns the byte offset where frame index i starts
// (counting the header frame as index 0). Only called for indices the
// scanner already validated.
func frameOffset(data []byte, i int) int64 {
	off := 0
	for k := 0; k < i; k++ {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += frameHeader + n
	}
	return int64(off)
}

// Append journals one entry: frame, write, fsync. The entry is durable
// when Append returns nil.
func (w *Writer) Append(e Entry) error {
	if w == nil {
		return nil
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: marshal entry: %w", err)
	}
	buf := Frame(payload)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if _, err := w.f.Write(buf); err != nil {
		w.err = fmt.Errorf("journal: append: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: sync: %w", err)
		return w.err
	}
	w.records++
	w.bytes += int64(len(buf))
	return nil
}

// Close releases the file. The journal needs no finalization: every
// acknowledged append is already durable.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	err := w.f.Close()
	w.f = nil
	if w.err == nil {
		w.err = err
	} else {
		err = w.err
	}
	return err
}
