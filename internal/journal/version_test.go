package journal

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// writeHeader hand-crafts a journal whose header frame carries the
// given schema string — the forward-compat regression fixture.
func writeHeader(t *testing.T, schema string) string {
	t.Helper()
	path := tmpJournal(t)
	payload := []byte(`{"schema":"` + schema + `"}`)
	if err := os.WriteFile(path, Frame(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFutureVersionRejected: a journal from a newer schema version must
// be refused with ErrFutureVersion and a message that tells the
// operator what to do — never recreated (data loss) or misparsed.
func TestFutureVersionRejected(t *testing.T) {
	for _, schema := range []string{"prudentia.journal/2", "prudentia.journal/99"} {
		path := writeHeader(t, schema)
		_, _, err := Open(path)
		if err == nil {
			t.Fatalf("schema %q: future version accepted", schema)
		}
		if !errors.Is(err, ErrFutureVersion) {
			t.Fatalf("schema %q: error %v is not ErrFutureVersion", schema, err)
		}
		if !strings.Contains(err.Error(), schema) || !strings.Contains(err.Error(), Schema) {
			t.Fatalf("schema %q: message %q must name both versions", schema, err)
		}
		// The refusal must leave the file untouched for the newer binary.
		data, rerr := os.ReadFile(path)
		if rerr != nil || len(data) == 0 {
			t.Fatalf("schema %q: journal file was disturbed: %v", schema, rerr)
		}
	}
}

// TestForeignSchemaIsNotFutureVersion: files that merely are not
// journals (or use a non-numeric suffix) get the generic rejection, so
// the "upgrade your binary" hint never misfires.
func TestForeignSchemaIsNotFutureVersion(t *testing.T) {
	for _, schema := range []string{"other/9", "prudentia.journal/x", "prudentia.checkpoint/2"} {
		path := writeHeader(t, schema)
		_, _, err := Open(path)
		if err == nil {
			t.Fatalf("schema %q accepted", schema)
		}
		if errors.Is(err, ErrFutureVersion) {
			t.Fatalf("schema %q wrongly classified as a future version: %v", schema, err)
		}
	}
}

// TestPastVersionZeroRejectedPlainly: "prudentia.journal/0" is not a
// future version; it gets the generic error.
func TestPastVersionZeroRejectedPlainly(t *testing.T) {
	path := writeHeader(t, "prudentia.journal/0")
	_, _, err := Open(path)
	if err == nil || errors.Is(err, ErrFutureVersion) {
		t.Fatalf("version 0: got %v, want plain rejection", err)
	}
}
