package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "trials.journal")
}

func entry(i int) Entry {
	return Entry{
		Seed:    uint64(1000 + i),
		Pair:    fmt.Sprintf("A vs B#%d", i),
		Attempt: i,
		Kind:    "ok",
		Result:  json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)),
	}
}

// TestRoundTrip: append N entries, reopen, get them all back with zero
// truncation.
func TestRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []Entry
	for i := 0; i < 10; i++ {
		e := entry(i)
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
		want = append(want, e)
	}
	records, bytes := w.Stats()
	if records != 10 || bytes == 0 {
		t.Fatalf("stats = (%d, %d)", records, bytes)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Truncated || rec.TornBytes != 0 {
		t.Fatalf("clean journal reported truncation: %+v", rec)
	}
	if !reflect.DeepEqual(rec.Entries, want) {
		t.Fatalf("recovered entries differ:\n got %+v\nwant %+v", rec.Entries, want)
	}
}

// TestAppendAfterRecovery: entries appended after a recovery land after
// the recovered ones, and a second recovery sees both generations.
func TestAppendAfterRecovery(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry(0)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(entry(1)); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	_, rec, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 2 || rec.Entries[1].Seed != 1001 {
		t.Fatalf("recovered %+v", rec.Entries)
	}
}

// TestTornTailTruncated: chopping bytes off the end of the file must
// drop only the torn record; earlier records survive and appending
// after recovery works.
func TestTornTailTruncated(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append of record 5: cut into record 4's frame.
	for cut := 1; cut < 40; cut += 7 {
		torn := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, rec, err := Open(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !rec.Truncated || rec.TornBytes == 0 {
			t.Fatalf("cut %d: truncation not reported: %+v", cut, rec)
		}
		if len(rec.Entries) != 4 {
			t.Fatalf("cut %d: want 4 intact entries, got %d", cut, len(rec.Entries))
		}
		if err := w2.Append(entry(99)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		w2.Close()
		_, rec2, err := Open(torn)
		if err != nil {
			t.Fatal(err)
		}
		if rec2.Truncated || len(rec2.Entries) != 5 || rec2.Entries[4].Seed != 1099 {
			t.Fatalf("cut %d: second recovery %+v", cut, rec2)
		}
	}
}

// TestBitFlipTruncates: flipping a bit inside a record payload fails
// its CRC; that record and everything after it are cut, everything
// before survives.
func TestBitFlipTruncates(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the start of record 3 (frame index 4: header + records 0-2).
	off := int64(0)
	for k := 0; k < 4; k++ {
		n := binary.BigEndian.Uint32(data[off : off+4])
		off += int64(frameHeader) + int64(n)
	}
	data[off+frameHeader+2] ^= 0x40 // flip a payload bit in record 3
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, rec, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !rec.Truncated || len(rec.Entries) != 3 {
		t.Fatalf("bit flip: %+v", rec)
	}
	for i, e := range rec.Entries {
		if e.Seed != uint64(1000+i) {
			t.Fatalf("entry %d corrupted: %+v", i, e)
		}
	}
}

// TestOpenMissingCreates: Open on a nonexistent path behaves like
// Create.
func TestOpenMissingCreates(t *testing.T) {
	path := tmpJournal(t)
	w, rec, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated || len(rec.Entries) != 0 {
		t.Fatalf("fresh open: %+v", rec)
	}
	if err := w.Append(entry(0)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, rec2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Entries) != 1 {
		t.Fatalf("recovered %+v", rec2)
	}
}

// TestWrongSchemaRejected: a valid frame stream whose header is not the
// journal schema must be refused, not silently rebuilt.
func TestWrongSchemaRejected(t *testing.T) {
	path := tmpJournal(t)
	payload := []byte(`{"schema":"other/9"}`)
	if err := os.WriteFile(path, Frame(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// TestGarbageFileRebuilt: a file with no intact frame at all (e.g. a
// different format entirely) is rebuilt as a fresh journal with the
// loss reported.
func TestGarbageFileRebuilt(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, rec, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !rec.Truncated || rec.TornBytes != int64(len("not a journal")) {
		t.Fatalf("garbage file: %+v", rec)
	}
}

// TestNilWriterSafe: every method on a nil *Writer is a no-op.
func TestNilWriterSafe(t *testing.T) {
	var w *Writer
	if err := w.Append(entry(0)); err != nil {
		t.Fatal(err)
	}
	if r, b := w.Stats(); r != 0 || b != 0 {
		t.Fatal("nil stats")
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzScan: recovery over arbitrary bytes must never panic, and must be
// idempotent — opening the recovered file a second time yields the same
// entries with nothing further truncated.
func FuzzScan(f *testing.F) {
	// Seed corpus: a clean journal, a torn one, a bit-flipped one.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.journal")
	w, err := Create(path)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(entry(i)); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("\x00\x00\x00\x04\xff\xff\xff\xffabcd"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		w1, rec1, err := Open(p)
		if err != nil {
			return // rejected input (e.g. foreign schema) is fine
		}
		w1.Close()
		w2, rec2, err := Open(p)
		if err != nil {
			t.Fatalf("second open of recovered journal failed: %v", err)
		}
		w2.Close()
		if rec2.Truncated || rec2.TornBytes != 0 {
			t.Fatalf("recovery not idempotent: second open truncated %d bytes", rec2.TornBytes)
		}
		if !reflect.DeepEqual(rec1.Entries, rec2.Entries) {
			t.Fatalf("recovery not stable:\n first %+v\nsecond %+v", rec1.Entries, rec2.Entries)
		}
	})
}

func TestCRCMatchesStdlib(t *testing.T) {
	// Pin the checksum choice: the on-disk format commits to CRC32-IEEE.
	payload := []byte(`{"seed":1}`)
	fr := Frame(payload)
	if got := binary.BigEndian.Uint32(fr[4:8]); got != crc32.ChecksumIEEE(payload) {
		t.Fatalf("frame CRC %#x", got)
	}
}
