// Command report renders saved experiment artifacts (the CSV files
// cmd/experiment exports) back into the paper's visual forms: queue
// occupancy and throughput sparklines.
//
// Usage:
//
//	report -dir /tmp/artifacts -link-mbps 50 -queue-pkts 1024
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"prudentia/internal/metrics"
	"prudentia/internal/netem"
	"prudentia/internal/report"
	"prudentia/internal/sim"
)

func main() {
	var (
		dir       = flag.String("dir", ".", "artifact directory (queue.csv, rate.csv)")
		linkMbps  = flag.Float64("link-mbps", 50, "link rate for throughput scaling")
		queuePkts = flag.Int("queue-pkts", 1024, "queue capacity for occupancy scaling")
	)
	flag.Parse()

	if pts, err := readRate(filepath.Join(*dir, "rate.csv")); err == nil {
		fmt.Print(report.RateSeries("throughput (svc0 / svc1):", pts, *linkMbps,
			[2]string{"service 0", "service 1"}))
	} else {
		fmt.Fprintf(os.Stderr, "report: rate.csv: %v\n", err)
	}
	if samples, err := readQueue(filepath.Join(*dir, "queue.csv")); err == nil {
		fmt.Print(report.QueueSeries("bottleneck queue occupancy:", samples, *queuePkts))
	} else {
		fmt.Fprintf(os.Stderr, "report: queue.csv: %v\n", err)
	}
}

func readRate(path string) ([]metrics.RatePoint, error) {
	rows, err := readCSV(path)
	if err != nil {
		return nil, err
	}
	var pts []metrics.RatePoint
	for _, r := range rows {
		if len(r) < 3 {
			continue
		}
		t, err1 := strconv.ParseFloat(r[0], 64)
		a, err2 := strconv.ParseFloat(r[1], 64)
		b, err3 := strconv.ParseFloat(r[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad row %v", r)
		}
		pts = append(pts, metrics.RatePoint{
			At:   sim.Time(t * float64(sim.Second)),
			Mbps: [2]float64{a, b},
		})
	}
	return pts, nil
}

func readQueue(path string) ([]netem.OccupancySample, error) {
	rows, err := readCSV(path)
	if err != nil {
		return nil, err
	}
	var out []netem.OccupancySample
	for _, r := range rows {
		if len(r) < 4 {
			continue
		}
		t, err1 := strconv.ParseFloat(r[0], 64)
		total, err2 := strconv.Atoi(r[1])
		s0, err3 := strconv.Atoi(r[2])
		s1, err4 := strconv.Atoi(r[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("bad row %v", r)
		}
		out = append(out, netem.OccupancySample{
			At:         sim.Time(t * float64(sim.Second)),
			Total:      total,
			PerService: [2]int{s0, s1},
		})
	}
	return out, nil
}

func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) > 0 {
		rows = rows[1:] // header
	}
	return rows, nil
}
