package main

// End-to-end crash-safety test for serve mode: SIGKILL the real daemon
// binary at randomized (seed-logged) points across restarts and require
// the survivors to converge on output byte-identical to an
// uninterrupted daemon — with an accepted submission surviving exactly
// once through the kills.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"prudentia/internal/journal"
)

const restartSubmitURL = "https://example.com/kill-restart"

// e2eArtifactDir is where a test's daemon logs and state directories
// land: $PRUDENTIA_E2E_ARTIFACTS/<test> when set (CI keeps it for the
// failure upload), else a per-test temp dir.
func e2eArtifactDir(t *testing.T) string {
	if base := os.Getenv("PRUDENTIA_E2E_ARTIFACTS"); base != "" {
		dir := filepath.Join(base, t.Name())
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// restartServeArgs is the shared daemon workload: a two-cycle campaign
// over two baseline services with every durability file rooted in
// stateDir. The 3s inter-cycle pause is the window in which the test
// posts its submission, so it lands at the cycle-2 boundary in both the
// reference and the kill-loop runs.
func restartServeArgs(stateDir, addrFile string) []string {
	return []string{
		"-serve", "-serve-addr", "127.0.0.1:0", "-serve-addr-file", addrFile,
		"-serve-dir", stateDir,
		"-cycles", "2", "-cycle-interval", "3s",
		"-setting", "high", "-seed", "42", "-workers", "2",
		"-services", "iPerf (Cubic),iPerf (BBR)",
	}
}

// startServeDaemon boots one daemon instance (without waiting for
// readiness) and returns its process and a logged output file.
func startServeDaemon(t *testing.T, bin string, args []string, logPath string) *exec.Cmd {
	t.Helper()
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		logf.Close()
	})
	return cmd
}

// waitServeAddr polls the address file until the daemon publishes its
// bound address.
func waitServeAddr(t *testing.T, addrFile string) string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return "http://" + strings.TrimSpace(string(b))
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("daemon never wrote its address file")
	return ""
}

// waitLatestCycle polls /api/v1/cycles until the latest published cycle
// reaches want (or the deadline passes).
func waitLatestCycle(t *testing.T, base string, want int, timeout time.Duration) {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if doc, ok := fetchCyclesDoc(client, base); ok && doc.Latest >= want {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon never published cycle %d", want)
}

type cyclesDocLite struct {
	Latest   int `json:"latest"`
	Retained []struct {
		Cycle    int `json:"cycle"`
		Services int `json:"services"`
	} `json:"retained"`
}

func fetchCyclesDoc(client *http.Client, base string) (cyclesDocLite, bool) {
	var doc cyclesDocLite
	resp, err := client.Get(base + "/api/v1/cycles")
	if err != nil {
		return doc, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return doc, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, false
	}
	return doc, true
}

// fetchBody GETs a path and returns its body, failing the test on any
// error or non-200.
func fetchBody(t *testing.T, base, path string) string {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d:\n%s", path, resp.StatusCode, b)
	}
	return string(b)
}

// postRestartSubmission queues the test submission and requires the
// durable 202 with the cycle-2 application promise.
func postRestartSubmission(t *testing.T, base string) {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	body := fmt.Sprintf(`{"url":%q,"access_code":"KD4p1Z8Gs1SVPHUrTOVTMNHtvUnMSmvZ","tenant":"kill-e2e"}`, restartSubmitURL)
	resp, err := client.Post(base+"/api/v1/submissions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission = %d, want 202:\n%s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), `"applies_after_cycle": 1`) {
		t.Fatalf("submission must land at the cycle-2 boundary, got:\n%s", b)
	}
}

// auditSubsWAL parses the submission WAL's frames and counts accept and
// successful-apply records for the test URL. Compaction legitimately
// removes both once their cycle commits, so callers assert "never more
// than one", not "always exactly one".
func auditSubsWAL(t *testing.T, path string) (accepts, applies int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0
		}
		t.Fatal(err)
	}
	frames, _ := journal.ScanFrames(data)
	if len(frames) == 0 {
		return 0, 0
	}
	var hdr struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(frames[0], &hdr); err != nil || hdr.Schema != "prudentia.subs/1" {
		t.Fatalf("submission wal header = %q (err %v)", frames[0], err)
	}
	var acceptSeq uint64
	for _, frame := range frames[1:] {
		var rec struct {
			Op  string `json:"op"`
			Seq uint64 `json:"seq"`
			URL string `json:"url"`
			OK  bool   `json:"ok"`
		}
		if err := json.Unmarshal(frame, &rec); err != nil {
			t.Fatalf("submission wal frame %q: %v", frame, err)
		}
		switch rec.Op {
		case "accept":
			if rec.URL == restartSubmitURL {
				accepts++
				acceptSeq = rec.Seq
			}
		case "apply":
			if rec.OK && accepts > 0 && rec.Seq == acceptSeq {
				applies++
			}
		}
	}
	return accepts, applies
}

// TestServeKillRestartLoop SIGKILLs a stateful daemon at randomized
// (seed-logged) points across at least five restarts. The surviving
// daemon's final artifacts must be byte-identical to an uninterrupted
// reference daemon at the same seed, and the submission accepted before
// the first kill must be applied exactly once — never lost, never
// doubled (a double application would duplicate its catalog service and
// change the report bytes).
func TestServeKillRestartLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-restart loop is slow")
	}
	bin := buildBinary(t)
	dir := e2eArtifactDir(t)

	// Reference: one uninterrupted daemon, same seed, same submission at
	// the same cycle boundary.
	refState := filepath.Join(dir, "ref-state")
	refAddr := filepath.Join(dir, "ref-addr.txt")
	refCmd := startServeDaemon(t, bin, restartServeArgs(refState, refAddr), filepath.Join(dir, "ref-daemon.log"))
	refBase := waitServeAddr(t, refAddr)
	waitLatestCycle(t, refBase, 1, 120*time.Second)
	postRestartSubmission(t, refBase)
	waitLatestCycle(t, refBase, 2, 120*time.Second)
	refReport := fetchBody(t, refBase, "/api/v1/report.txt")
	refCycles := fetchBody(t, refBase, "/api/v1/cycles")
	if err := refCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := refCmd.Wait(); err != nil {
		t.Fatalf("reference daemon exit: %v", err)
	}

	// Kill loop. The seed is logged so any failure replays exactly.
	killSeed := time.Now().UnixNano()
	if env := os.Getenv("PRUDENTIA_KILL_SEED"); env != "" {
		var err error
		killSeed, err = strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("PRUDENTIA_KILL_SEED: %v", err)
		}
	}
	t.Logf("kill-point seed: %d (re-run with PRUDENTIA_KILL_SEED=%d)", killSeed, killSeed)
	rng := rand.New(rand.NewSource(killSeed))

	state := filepath.Join(dir, "state")
	addrFile := filepath.Join(dir, "addr.txt")
	logPath := filepath.Join(dir, "daemon.log")
	walPath := filepath.Join(state, "subs.wal")

	cmd := startServeDaemon(t, bin, restartServeArgs(state, addrFile), logPath)
	base := waitServeAddr(t, addrFile)
	waitLatestCycle(t, base, 1, 120*time.Second)
	postRestartSubmission(t, base)

	const minKills = 5
	for kill := 1; kill <= minKills; kill++ {
		time.Sleep(time.Duration(50+rng.Intn(900)) * time.Millisecond)
		cmd.Process.Kill() // SIGKILL: no drain, no checkpoint flush beyond what fsync already made durable
		cmd.Wait()

		// Exactly-once, mid-crash: the WAL may hold the accept (still
		// pending or applied-but-uncommitted) or nothing (its cycle
		// committed and compaction removed it) — but never duplicates.
		accepts, applies := auditSubsWAL(t, walPath)
		if accepts > 1 || applies > 1 {
			t.Fatalf("after kill %d: %d accept / %d ok-apply records for %s in the WAL, want at most one of each",
				kill, accepts, applies, restartSubmitURL)
		}

		os.Remove(addrFile)
		cmd = startServeDaemon(t, bin, restartServeArgs(state, addrFile), logPath)
		base = waitServeAddr(t, addrFile)
	}
	t.Logf("survived %d SIGKILLs; waiting for the campaign to converge", minKills)

	waitLatestCycle(t, base, 2, 180*time.Second)
	gotReport := fetchBody(t, base, "/api/v1/report.txt")
	gotCycles := fetchBody(t, base, "/api/v1/cycles")

	if gotReport != refReport {
		t.Errorf("post-restart report.txt differs from uninterrupted run:\n--- restarted ---\n%s\n--- reference ---\n%s", gotReport, refReport)
	}
	if gotCycles != refCycles {
		t.Errorf("post-restart cycles index differs from uninterrupted run:\n--- restarted ---\n%s\n--- reference ---\n%s", gotCycles, refCycles)
	}
	var doc cyclesDocLite
	if err := json.Unmarshal([]byte(gotCycles), &doc); err != nil {
		t.Fatal(err)
	}
	for _, entry := range doc.Retained {
		want := 2
		if entry.Cycle >= 2 {
			want = 3 // the submission joined exactly once
		}
		if entry.Services != want {
			t.Errorf("cycle %d catalog = %d services, want %d", entry.Cycle, entry.Services, want)
		}
	}

	// The restarts are visible in the log: recovery ran at least once.
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(logBytes), "serve: rehydrated cycles") {
		t.Errorf("daemon log never shows state rehydration:\n%s", logBytes)
	}
}

// TestServeDiskChaosSurvives runs a short stateful campaign with the
// -chaos-disk plan armed (injected ENOSPC, torn-tail fsyncs, fsync
// stalls on every durable writer) and requires the daemon to finish the
// campaign and serve a well-formed report anyway.
func TestServeDiskChaosSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("disk-chaos campaign is slow")
	}
	bin := buildBinary(t)
	dir := e2eArtifactDir(t)
	state := filepath.Join(dir, "state")
	addrFile := filepath.Join(dir, "addr.txt")
	args := append(restartServeArgs(state, addrFile),
		"-chaos-disk", "7", "-cycle-interval", "-1ms", "-cycles", "1")
	cmd := startServeDaemon(t, bin, args, filepath.Join(dir, "daemon.log"))
	base := waitServeAddr(t, addrFile)
	waitLatestCycle(t, base, 1, 180*time.Second)
	report := fetchBody(t, base, "/api/v1/report")
	if !strings.Contains(report, `"cycle": 1`) {
		t.Errorf("disk-chaos report malformed:\n%s", report)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit under disk chaos: %v", err)
	}
}
