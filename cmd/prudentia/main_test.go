package main

// End-to-end acceptance test for the observability surface: build the
// real binary, run a seeded cycle with every obs flag, and require the
// artifacts to exist, parse, and reconcile with each other.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"prudentia/internal/obs"
)

// buildBinary compiles cmd/prudentia once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "prudentia")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runCycle executes one seeded quick cycle over the two-baseline catalog
// with all observability sinks enabled, returning the artifact dir.
func runCycle(t *testing.T, bin string, seed string) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command(bin,
		"-cycles", "1", "-setting", "high", "-workers", "4", "-seed", seed,
		"-services", "iPerf (Cubic),iPerf (BBR)",
		"-metrics-out", filepath.Join(dir, "metrics.prom"),
		"-timeline", filepath.Join(dir, "timeline.jsonl"),
		"-pprof-dir", filepath.Join(dir, "pprof"),
		"-faults-out", filepath.Join(dir, "faults.jsonl"),
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("prudentia run: %v\n%s", err, out)
	}
	return dir
}

func TestEndToEndObservabilityArtifacts(t *testing.T) {
	dir := runCycle(t, buildBinary(t), "42")

	// Manifest: schema, flag echo, and the reconciliation identity.
	m, err := obs.ReadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != obs.ManifestSchema {
		t.Fatalf("manifest schema = %q", m.Schema)
	}
	if m.BaseSeed != 42 || m.Workers != 4 || m.Interrupted || m.ChaosEnabled {
		t.Fatalf("manifest envelope does not echo the flags: %+v", m)
	}
	if len(m.Services) != 2 || m.Services[0] != "iPerf (Cubic)" {
		t.Fatalf("manifest services = %v", m.Services)
	}
	c := m.Metrics.Counters
	started := c["prudentia_trials_started_total"]
	accounted := c["prudentia_trials_completed_total"] + c["prudentia_trials_failed_total"] +
		c["prudentia_trials_discarded_total"] + c["prudentia_trials_corrupt_total"]
	if started == 0 || started != accounted {
		t.Fatalf("trial ledger does not reconcile: started=%d, accounted=%d", started, accounted)
	}
	if c["prudentia_pairs_completed_total"] != 3 || c["prudentia_calibrations_total"] != 2 {
		t.Fatalf("2-service matrix must complete 3 pairs and 2 calibrations: %v", c)
	}
	if c["prudentia_netem_arrived_packets_total"] == 0 ||
		c["prudentia_netem_delivered_packets_total"] == 0 {
		t.Fatalf("netem counters empty: %v", c)
	}

	// Timeline: parses, and its trial events agree with the counters.
	f, err := os.Open(filepath.Join(dir, "timeline.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadTimeline(f)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int64{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds["cycle_start"] != 1 || kinds["cycle_end"] != 1 {
		t.Fatalf("timeline framing: %v", kinds)
	}
	if kinds["trial_start"] != started {
		t.Fatalf("timeline trial_start=%d, manifest counter=%d", kinds["trial_start"], started)
	}
	if kinds["pair_done"] != 3 || kinds["calibration_done"] != 2 {
		t.Fatalf("timeline pair/calibration events: %v", kinds)
	}

	// Prometheus exposition: well-formed enough to contain the families.
	prom, err := os.ReadFile(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE prudentia_trials_started_total counter",
		"# TYPE prudentia_trial_sim_seconds histogram",
		`prudentia_trial_sim_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("metrics.prom missing %q", want)
		}
	}

	// Profiles: both captured, non-empty.
	for _, name := range []string{"cycle1.cpu.pprof", "cycle1.heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, "pprof", name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

// TestEndToEndSeededDeterminism: two runs of the same seeded cycle must
// produce identical metric snapshots once wall-clock metrics are
// stripped — the full-binary version of the core determinism test.
func TestEndToEndSeededDeterminism(t *testing.T) {
	bin := buildBinary(t)
	read := func(dir string) obs.Snapshot {
		m, err := obs.ReadManifest(filepath.Join(dir, "manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		return m.Metrics.StripWallClock()
	}
	a := read(runCycle(t, bin, "7"))
	b := read(runCycle(t, bin, "7"))
	if !a.Equal(b) {
		t.Fatal("identical seeded runs produced different metric snapshots")
	}
	if a.Counters["prudentia_trials_completed_total"] == 0 {
		t.Fatal("determinism check ran zero trials")
	}
}
