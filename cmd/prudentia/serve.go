package main

// Serve-mode wiring: translate CLI flags into a serve.Server over the
// configured watchdog and run it until the signal handler asks for a
// graceful stop. The daemon mirrors each completed cycle's batch report
// to stdout through the same renderer its /api/v1/report.txt serves, so
// daemon logs and daemon responses are byte-interchangeable with a
// batch run at the same seed.

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"prudentia/internal/core"
	"prudentia/internal/obs"
	"prudentia/internal/report"
	"prudentia/internal/serve"
	"prudentia/internal/trace"
)

// serveOptions is the flag bundle for -serve.
type serveOptions struct {
	addr           string
	addrFile       string
	cycleInterval  time.Duration
	history        int
	submissionsMax int
	maxCycles      int
	stateDir       string
}

// runServe boots the daemon and blocks until stopped closes (first
// SIGINT/SIGTERM) and the HTTP server drains, or a cycle fails.
func runServe(w *core.Watchdog, ledger *trace.FaultLedger, reg *obs.Registry,
	opts serveOptions, stopped <-chan struct{}, exportObs func(*core.CycleResult)) error {
	s, err := serve.New(serve.Config{
		Source:         w,
		Ledger:         ledger,
		Registry:       reg,
		CycleInterval:  opts.cycleInterval,
		History:        opts.history,
		SubmissionsMax: opts.submissionsMax,
		MaxCycles:      opts.maxCycles,
		StateDir:       opts.stateDir,
		DiskChaos:      w.DiskChaos,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
		OnCycle: func(cr *core.CycleResult) {
			exportObs(cr)
			// Mirror the batch report to stdout, bytes for bytes.
			fmt.Print(report.ReportText(cr, w.Settings, w.Services, ledger.Summary()))
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	if opts.addrFile != "" {
		if err := os.WriteFile(opts.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("serve-addr-file: %w", err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-stopped
		cancel()
	}()
	return s.Run(ctx, ln)
}
