package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/sim"
	"prudentia/internal/stats"
)

// Sweep mode: instead of watchdog cycles over the standing settings,
// -sweep runs the full pair matrix of a small CCA catalog at every
// point of a rate × RTT × queue grid and writes two consolidated
// artifacts — a flat TSV (one row per pair slot per grid cell, ready
// for gnuplot/pandas) and a JSON document that additionally carries
// each cell's merged share-percentage sketch, so a downstream consumer
// can recover any quantile of the whole cell without the raw trials.
// The grid reuses the quick trial protocol and the deterministic seed
// schedule, so a sweep is reproducible bit for bit.

// sweepTSVHeader is the column schema of <prefix>.tsv, asserted by the
// CI smoke test — extend it only together with scripts/ci.sh.
const sweepTSVHeader = "rate_mbps\trtt_ms\tqueue_pkts\tincumbent\tcontender\tslot\tservice\tn\tmedian_share_pct\tiqr_share_pct\tci_lo_pct\tci_hi_pct\tverdict"

// sweepConfig collects the resolved -sweep-* flags.
type sweepConfig struct {
	RatesMbps []float64
	RTTsMs    []float64
	Queues    []int
	CCAs      []string
	Out       string
	Workers   int
	Seed      uint64
	Exact     bool
	Verbose   bool
}

// sweepCell is one grid point's consolidated result in <prefix>.json.
type sweepCell struct {
	RateMbps  float64     `json:"rate_mbps"`
	RTTMs     float64     `json:"rtt_ms"`
	QueuePkts int         `json:"queue_pkts"`
	Pairs     []sweepPair `json:"pairs"`
	// MergedShare is the union of every non-failed pair's two share
	// sketches — the cell's full share distribution in one mergeable,
	// O(1) object. Omitted under -exact-stats.
	MergedShare *stats.Sketch `json:"merged_share_sketch,omitempty"`
}

// sweepPair is one pair's two slots at one grid point.
type sweepPair struct {
	Incumbent string     `json:"incumbent"`
	Contender string     `json:"contender"`
	N         int        `json:"n"`
	Median    [2]float64 `json:"median_share_pct"`
	IQR       [2]float64 `json:"iqr_share_pct"`
	CILo      [2]float64 `json:"ci_lo_pct"`
	CIHi      [2]float64 `json:"ci_hi_pct"`
	Verdict   string     `json:"verdict"`
}

// splitTrim splits a comma-separated flag into trimmed entries.
func splitTrim(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseSweepFloats parses a comma-separated float list flag.
func parseSweepFloats(flagName, s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-%s: bad value %q", flagName, f)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseSweepInts parses a comma-separated int list flag.
func parseSweepInts(flagName, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-%s: bad value %q", flagName, f)
		}
		out = append(out, v)
	}
	return out, nil
}

// sweepVerdict classifies one pair: "fair" when both slots' median MmF
// shares clear the paper's 80% bar, "unfair" otherwise, with the
// protocol states passed through.
func sweepVerdict(p *core.PairOutcome) string {
	switch {
	case p == nil || p.Skipped:
		return "skipped"
	case p.Failed:
		return "failed"
	case p.Unstable:
		return "unstable"
	case p.MedianSharePct(0) >= stats.DefaultFairSharePct &&
		p.MedianSharePct(1) >= stats.DefaultFairSharePct:
		return "fair"
	default:
		return "unfair"
	}
}

// runSweep executes the grid and writes <Out>.tsv and <Out>.json.
// Cells run sequentially (each matrix already fans trials out to
// cfg.Workers); rows and cells appear in deterministic grid order
// (rate-major, then RTT, then queue).
func runSweep(cfg sweepConfig) error {
	var svcs []services.Service
	for _, name := range cfg.CCAs {
		svc := services.ByName(name)
		if svc == nil {
			return fmt.Errorf("-sweep-ccas: unknown service %q", name)
		}
		svcs = append(svcs, svc)
	}
	var tsv strings.Builder
	tsv.WriteString(sweepTSVHeader + "\n")
	var cells []sweepCell
	total := len(cfg.RatesMbps) * len(cfg.RTTsMs) * len(cfg.Queues)
	done := 0
	for _, rate := range cfg.RatesMbps {
		for _, rtt := range cfg.RTTsMs {
			for _, queue := range cfg.Queues {
				net := netem.Config{
					RateBps:       int64(rate * 1e6),
					RTT:           sim.Time(rtt * float64(sim.Millisecond)),
					QueueCapacity: queue,
				}
				opts := core.QuickOptions(net)
				opts.SketchStats = !cfg.Exact
				if cfg.Seed != 0 {
					opts.BaseSeed = cfg.Seed
				}
				m := &core.Matrix{Services: svcs, Net: net, Opts: opts,
					Workers: cfg.Workers}
				res, err := m.Run()
				if err != nil {
					return fmt.Errorf("sweep cell rate=%g rtt=%g queue=%d: %w",
						rate, rtt, queue, err)
				}
				cell := sweepCell{RateMbps: rate, RTTMs: rtt, QueuePkts: queue,
					MergedShare: res.MergedShareSketch()}
				for i, a := range res.Names {
					for j := i; j < len(res.Names); j++ {
						b := res.Names[j]
						p, _, ok := res.Cell(a, b)
						if !ok || p == nil {
							continue
						}
						sp := sweepPair{Incumbent: a, Contender: b,
							N: p.Counted(), Verdict: sweepVerdict(p)}
						for slot := 0; slot < 2; slot++ {
							sp.Median[slot] = p.MedianSharePct(slot)
							sp.IQR[slot] = p.IQRSharePct(slot)
							sp.CILo[slot], sp.CIHi[slot] = p.ShareCI(slot)
							svcName := a
							if slot == 1 {
								svcName = b
							}
							fmt.Fprintf(&tsv, "%g\t%g\t%d\t%s\t%s\t%d\t%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%s\n",
								rate, rtt, queue, a, b, slot, svcName, sp.N,
								sp.Median[slot], sp.IQR[slot],
								sp.CILo[slot], sp.CIHi[slot], sp.Verdict)
						}
						cell.Pairs = append(cell.Pairs, sp)
					}
				}
				cells = append(cells, cell)
				done++
				if cfg.Verbose {
					fmt.Fprintf(os.Stderr,
						"prudentia: sweep cell %d/%d done (rate=%g Mbps rtt=%g ms queue=%d)\n",
						done, total, rate, rtt, queue)
				}
			}
		}
	}
	if err := os.WriteFile(cfg.Out+".tsv", []byte(tsv.String()), 0o644); err != nil {
		return err
	}
	doc := struct {
		Schema string      `json:"schema"`
		Seed   uint64      `json:"seed"`
		CCAs   []string    `json:"ccas"`
		Cells  []sweepCell `json:"cells"`
	}{Schema: "prudentia.sweep/1", Seed: cfg.Seed, CCAs: cfg.CCAs, Cells: cells}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.Out+".json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sweep: %d cells × %d services → %s.tsv, %s.json\n",
		total, len(svcs), cfg.Out, cfg.Out)
	return nil
}
