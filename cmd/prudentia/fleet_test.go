package main

// End-to-end fleet tests: a real coordinator process sharding a cycle
// over real worker processes, with workers SIGKILLed and restarted at
// seed-logged random points. The coordinator's report and fault ledger
// must be byte-identical to a serial single-process run — the fleet's
// whole determinism contract, exercised through the shipped binary.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// awaitAddrFile polls for the coordinator's published listen address.
func awaitAddrFile(t *testing.T, path string, stderr *bytes.Buffer) string {
	t.Helper()
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(path); err == nil {
			if s := strings.TrimSpace(string(b)); s != "" {
				return s
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("coordinator never published its address; stderr:\n%s", stderr.Bytes())
	return ""
}

// TestEndToEndFleetKillLoop runs one cycle through a coordinator with
// three worker processes while a seed-logged loop SIGKILLs random
// workers and restarts them. Every death re-queues the victim's leased
// pairs for the survivors, and because re-execution is deterministic,
// the final report and fault ledger must equal the serial reference
// byte for byte.
func TestEndToEndFleetKillLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet kill loop spawns many processes; skipped in -short")
	}
	bin := buildBinary(t)
	dir := t.TempDir()
	seedArgs := cycleArgs("31")

	// Serial reference: same workload, no fleet.
	refFaults := filepath.Join(dir, "ref-faults.jsonl")
	ref := exec.Command(bin, append(seedArgs, "-faults-out", refFaults)...)
	refOut, err := ref.CombinedOutput()
	if err != nil {
		t.Fatalf("reference run: %v\n%s", err, refOut)
	}

	killSeed := time.Now().UnixNano()
	if env := os.Getenv("PRUDENTIA_FLEET_KILL_SEED"); env != "" {
		killSeed, err = strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("PRUDENTIA_FLEET_KILL_SEED: %v", err)
		}
	}
	t.Logf("kill seed: %d (re-run with PRUDENTIA_FLEET_KILL_SEED=%d)", killSeed, killSeed)
	rng := rand.New(rand.NewSource(killSeed))

	addrFile := filepath.Join(dir, "addr.txt")
	faults := filepath.Join(dir, "faults.jsonl")
	coord := exec.Command(bin, append(seedArgs,
		"-coordinator", "-listen", "127.0.0.1:0", "-listen-addr-file", addrFile,
		"-expect-workers", "3", "-faults-out", faults)...)
	var coordOut, coordErr bytes.Buffer
	coord.Stdout, coord.Stderr = &coordOut, &coordErr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coordDone := make(chan error, 1)
	go func() { coordDone <- coord.Wait() }()
	defer coord.Process.Kill()

	addr := awaitAddrFile(t, addrFile, &coordErr)
	startWorker := func(i int) *exec.Cmd {
		cmd := exec.Command(bin, append(seedArgs,
			"-worker", "-connect", addr, "-worker-name", fmt.Sprintf("w%d", i))...)
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		go cmd.Wait()
		return cmd
	}
	workers := make([]*exec.Cmd, 3)
	for i := range workers {
		workers[i] = startWorker(i)
	}
	defer func() {
		for _, w := range workers {
			_ = w.Process.Kill()
		}
	}()

	kills := 0
	testDeadline := time.After(5 * time.Minute)
loop:
	for {
		select {
		case err := <-coordDone:
			if err != nil {
				t.Fatalf("coordinator failed: %v\nstderr:\n%s", err, coordErr.Bytes())
			}
			break loop
		case <-testDeadline:
			t.Fatalf("fleet cycle did not converge after %d kills; coordinator stderr:\n%s",
				kills, coordErr.Bytes())
		case <-time.After(time.Duration(150+rng.Intn(250)) * time.Millisecond):
			victim := rng.Intn(len(workers))
			_ = workers[victim].Process.Kill()
			kills++
			workers[victim] = startWorker(victim)
		}
	}
	if kills == 0 {
		t.Fatal("cycle completed before any worker was killed; widen the workload")
	}
	t.Logf("fleet survived %d worker SIGKILLs", kills)

	if got, want := cycleOutput(t, coordOut.Bytes()), cycleOutput(t, refOut); got != want {
		t.Fatalf("fleet report differs from serial run after %d kills:\n--- fleet ---\n%s\n--- serial ---\n%s",
			kills, got, want)
	}
	gotF, err := os.ReadFile(faults)
	if err != nil {
		t.Fatal(err)
	}
	wantF, err := os.ReadFile(refFaults)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotF, wantF) {
		t.Fatalf("fleet fault ledger differs from serial run:\n--- fleet ---\n%s\n--- serial ---\n%s", gotF, wantF)
	}
}

// TestEndToEndFleetPartitions arms -chaos-partitions: the coordinator
// severs worker assignments on purpose, records the partitions in the
// fault ledger, and the report must STILL be byte-identical to serial —
// the severed pairs are just re-executed deterministically elsewhere.
func TestEndToEndFleetPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet partition test spawns processes; skipped in -short")
	}
	bin := buildBinary(t)
	dir := t.TempDir()
	seedArgs := []string{
		"-cycles", "1", "-setting", "high", "-seed", "5",
		"-services", "iPerf (Reno),iPerf (Cubic)",
	}

	ref := exec.Command(bin, seedArgs...)
	refOut, err := ref.CombinedOutput()
	if err != nil {
		t.Fatalf("reference run: %v\n%s", err, refOut)
	}

	addrFile := filepath.Join(dir, "addr.txt")
	faults := filepath.Join(dir, "faults.jsonl")
	coord := exec.Command(bin, append(seedArgs,
		"-coordinator", "-listen", "127.0.0.1:0", "-listen-addr-file", addrFile,
		"-expect-workers", "2", "-chaos-partitions", "1", "-faults-out", faults)...)
	var coordOut, coordErr bytes.Buffer
	coord.Stdout, coord.Stderr = &coordOut, &coordErr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coordDone := make(chan error, 1)
	go func() { coordDone <- coord.Wait() }()
	defer coord.Process.Kill()

	addr := awaitAddrFile(t, addrFile, &coordErr)
	var workers []*exec.Cmd
	for i := 0; i < 2; i++ {
		cmd := exec.Command(bin, append(seedArgs,
			"-worker", "-connect", addr, "-worker-name", fmt.Sprintf("p%d", i))...)
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		go cmd.Wait()
		workers = append(workers, cmd)
	}
	defer func() {
		for _, w := range workers {
			_ = w.Process.Kill()
		}
	}()

	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("coordinator failed: %v\nstderr:\n%s", err, coordErr.Bytes())
		}
	case <-time.After(5 * time.Minute):
		t.Fatalf("partitioned fleet did not converge; stderr:\n%s", coordErr.Bytes())
	}

	// The injected partitions surface in exactly one place on stdout:
	// the fault-ledger summary line. Everything else — every matrix and
	// summary — must match the serial run byte for byte.
	got := cycleOutput(t, coordOut.Bytes())
	if !strings.Contains(got, "fault ledger: partition=1") {
		t.Fatalf("report does not mention the injected partition:\n%s", got)
	}
	var kept []string
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "fault ledger:") {
			continue
		}
		kept = append(kept, line)
	}
	if got, want := strings.TrimRight(strings.Join(kept, "\n"), "\n"),
		strings.TrimRight(cycleOutput(t, refOut), "\n"); got != want {
		t.Fatalf("partitioned fleet report differs from serial run:\n--- fleet ---\n%s\n--- serial ---\n%s", got, want)
	}
	ledger, err := os.ReadFile(faults)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ledger), `"kind":"partition"`) {
		t.Fatalf("fault ledger records no partition events:\n%s", ledger)
	}
}
