package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"prudentia/internal/chaos"
	"prudentia/internal/core"
	"prudentia/internal/fleet"
	"prudentia/internal/netem"
	"prudentia/internal/obs"
	"prudentia/internal/trace"
)

// Fleet mode glue. A fleet run is one coordinator process
// (-coordinator -listen addr -expect-workers N) plus N worker processes
// (-worker -connect addr), each started with the SAME experiment flags
// (-services, -setting, -seed, -quick, -chaos, -max-trial-wall): the
// configuration fingerprint in the hello handshake rejects workers
// whose flags diverge, because they would compute silently different
// results. All fleet status lines go to stderr — the coordinator's
// stdout carries exactly the serial report, byte for byte.

// fleetStderr is the Progress hook for fleet components: membership and
// re-dispatch chatter belongs on stderr, never in the comparable report.
func fleetStderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "prudentia: "+format+"\n", args...)
}

// fleetFingerprint hashes everything that determines a trial's bytes:
// the catalog (names, in order), the network settings, the seed, and
// the mode flags that alter options. Derived from the resolved watchdog
// config rather than raw flags so -services filtering is included.
func fleetFingerprint(w *core.Watchdog, quick, chaosOn bool, maxWall float64) uint64 {
	parts := []string{
		fleet.Schema,
		fmt.Sprintf("seed=%d", w.Opts.BaseSeed),
		fmt.Sprintf("quick=%v", quick),
		fmt.Sprintf("chaos=%v", chaosOn),
		fmt.Sprintf("wall=%g", maxWall),
	}
	if w.Opts.SketchStats {
		// Sketch mode replaces the outcome's raw trial ledger with
		// mergeable sketches on the wire; a worker without it would ship
		// a different PairOutcome shape. Appended only when armed, so
		// -exact-stats fingerprints match pre-sketch builds.
		parts = append(parts, "stats=sketch")
	}
	if ad := w.Opts.Adaptive; ad != nil {
		// Adaptive stopping parameters change every pair's trial count,
		// so a worker with divergent (or absent) adaptive flags would
		// compute different bytes. Appended only when armed, so
		// fixed-budget fingerprints match pre-adaptive builds.
		parts = append(parts, fmt.Sprintf("adaptive=%d:%g:%d:%g:%d:%g",
			ad.MinTrials, ad.CIWidthPct, ad.StableK, ad.FairSharePct,
			ad.ScreenTrials, ad.BudgetFrac))
	}
	for _, svc := range w.Services {
		parts = append(parts, "svc:"+svc.Name())
	}
	for _, cfg := range w.Settings {
		parts = append(parts, settingFingerprint(cfg))
	}
	return fleet.Fingerprint(parts...)
}

// settingFingerprint renders one netem.Config's identity-bearing
// fields. Noise is dereferenced (a pointer would render its address,
// which differs per process and would falsely reject every worker).
func settingFingerprint(cfg netem.Config) string {
	noise := "none"
	if cfg.Noise != nil {
		noise = fmt.Sprintf("%+v", *cfg.Noise)
	}
	return fmt.Sprintf("net:%d:%v:%d:%d:%s:%v",
		cfg.RateBps, cfg.RTT, cfg.QueueCapacity, cfg.BufferBDP, noise, cfg.NoJitter)
}

// runWorker runs the process as a fleet worker until the coordinator
// shuts it down; it never returns to the cycle loop.
func runWorker(w *core.Watchdog, connect, name string, capacity int, fp uint64) {
	if connect == "" {
		fmt.Fprintln(os.Stderr, "prudentia: -worker requires -connect host:port")
		os.Exit(1)
	}
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	fw := &fleet.Worker{
		Name:        name,
		Coordinator: connect,
		Capacity:    capacity,
		Fingerprint: fp,
		Services:    w.Services,
		Settings:    w.Settings,
		Options:     w.SettingOptions,
		Progress:    fleetStderr,
	}
	if err := fw.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startCoordinator brings up the fleet listener, optionally publishes
// the bound address (for ":0" port discovery in tests and CI), waits
// for the expected fleet size, and attaches the coordinator to the
// watchdog as its remote runner. The returned cleanup shuts the fleet
// down after the last cycle.
func startCoordinator(w *core.Watchdog, ledger *trace.FaultLedger, reg *obs.Registry,
	listen, addrFile string, expect, partitions int, fp uint64) func() {
	coord := &fleet.Coordinator{
		ListenAddr:  listen,
		Fingerprint: fp,
		Breakers:    &core.BreakerSet{},
		OnFault:     ledger.Record,
		Progress:    fleetStderr,
		Obs:         fleet.NewInstruments(reg),
	}
	if partitions > 0 {
		// Coordinator-side chaos only: partitions never reach a trial,
		// so workers need no matching flag and the fingerprint ignores
		// it. The report stays byte-identical regardless — partitioned
		// workers' pairs are re-executed deterministically elsewhere.
		coord.Chaos = &chaos.Config{
			Partitions: []*chaos.WorkerPartition{{Times: int64(partitions)}},
		}
	}
	if err := coord.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
		os.Exit(1)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(coord.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: write -listen-addr-file: %v\n", err)
			os.Exit(1)
		}
	}
	fleetStderr("fleet: coordinator listening on %s (fingerprint %x, expecting %d workers)",
		coord.Addr(), fp, expect)
	if err := coord.WaitForWorkers(expect, 2*time.Minute); err != nil {
		fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
		os.Exit(1)
	}
	fleetStderr("fleet: %d workers connected; starting cycles", expect)
	w.Remote = coord
	return func() {
		fleetStderr("fleet: worker breakers: %s", fleetBreakerSummary(coord.BreakerStatus()))
		_ = coord.Close()
	}
}

// fleetBreakerSummary renders the coordinator's worker breakers for
// stderr status (mirrors breakerSummary for service breakers).
func fleetBreakerSummary(infos []obs.BreakerInfo) string {
	if len(infos) == 0 {
		return "all closed"
	}
	parts := make([]string, 0, len(infos))
	for _, bi := range infos {
		parts = append(parts, fmt.Sprintf("%s=%s(%.1f)", bi.Service, bi.State, bi.Score))
	}
	return strings.Join(parts, " ")
}
