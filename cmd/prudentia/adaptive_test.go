package main

// End-to-end acceptance tests for the adaptive trial-budget flags: the
// -adaptive run produces the observability evidence (manifest flag,
// stop counters, saved-trials counter), -fixed-trials disarms it into
// byte-identity with a plain run, and -resume from a pre-adaptive
// checkpoint falls back to fixed trials with a warning instead of
// failing the cycle.

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"prudentia/internal/core"
	"prudentia/internal/obs"
)

// TestEndToEndAdaptiveRun: -adaptive completes a cycle, stamps the
// manifest, and records stop reasons plus a positive trials-saved
// count.
func TestEndToEndAdaptiveRun(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	cmd := exec.Command(bin,
		"-cycles", "1", "-setting", "high", "-workers", "2", "-seed", "11",
		"-services", "iPerf (Reno),iPerf (Cubic),iPerf (BBR)",
		"-adaptive",
		"-manifest", filepath.Join(dir, "manifest.json"))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("adaptive run: %v\n%s", err, out)
	}
	m, err := obs.ReadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.AdaptiveEnabled {
		t.Fatal("manifest does not record adaptive mode")
	}
	c := m.Metrics.Counters
	stops := c[`prudentia_adaptive_stops_total{reason="ci_width"}`] +
		c[`prudentia_adaptive_stops_total{reason="verdict_stable"}`] +
		c[`prudentia_adaptive_stops_total{reason="budget"}`]
	if stops != c["prudentia_pairs_completed_total"] {
		t.Fatalf("every completed pair must record a stop reason: stops=%d pairs=%d",
			stops, c["prudentia_pairs_completed_total"])
	}
	if c["prudentia_adaptive_trials_saved_total"] == 0 {
		t.Fatal("adaptive run saved zero trials")
	}
	if c["prudentia_adaptive_screen_trials_total"] == 0 {
		t.Fatal("adaptive run recorded no screening trials")
	}
}

// TestEndToEndFixedTrialsByteIdentical: -adaptive -fixed-trials is the
// escape hatch — its stdout must be byte-identical to a run without
// any adaptive flags (the same property scripts/ci.sh gates against
// the golden report).
func TestEndToEndFixedTrialsByteIdentical(t *testing.T) {
	bin := buildBinary(t)
	args := []string{
		"-cycles", "1", "-setting", "high", "-workers", "2", "-seed", "42",
		"-services", "iPerf (Cubic),iPerf (BBR)",
	}
	plain, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	disarmed, err := exec.Command(bin, append(args, "-adaptive", "-fixed-trials")...).Output()
	if err != nil {
		t.Fatalf("disarmed run: %v", err)
	}
	if !bytes.Equal(plain, disarmed) {
		t.Fatalf("-adaptive -fixed-trials diverged from the plain run:\n--- plain ---\n%s\n--- disarmed ---\n%s",
			plain, disarmed)
	}
}

// TestEndToEndAdaptiveResumeFallback: resuming -adaptive from a
// checkpoint written before the budget field existed must not error
// out — the binary warns on stderr and finishes the cycle with fixed
// trials (regression test for the ErrCheckpointNoBudget path).
func TestEndToEndAdaptiveResumeFallback(t *testing.T) {
	bin := buildBinary(t)
	ckpt := filepath.Join(t.TempDir(), "state.json")
	// A fixed-mode (and hence pre-adaptive-shaped) checkpoint: cycle 1,
	// one setting, nothing completed, no budget state.
	pre := &core.Checkpoint{
		Cycle:       1,
		Calibration: make([]map[string]float64, 1),
		Pairs:       []map[string]*core.PairOutcome{{}},
	}
	if pre.HasBudgetState() {
		t.Fatal("setup: checkpoint must not carry budget state")
	}
	if err := core.SaveCheckpoint(ckpt, pre); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-cycles", "1", "-setting", "high", "-workers", "2", "-seed", "42",
		"-services", "iPerf (Cubic),iPerf (BBR)",
		"-adaptive", "-resume", "-checkpoint", ckpt)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("fallback run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "predates adaptive budgets") {
		t.Fatalf("no fallback warning in output:\n%s", out)
	}
	if !strings.Contains(string(out), "=== cycle") {
		t.Fatalf("fallback run produced no cycle report:\n%s", out)
	}
}
