package main

// End-to-end durability tests: SIGKILL the real binary mid-cycle at
// randomized points and require the journal-reconciled resume to
// converge on output byte-identical to an uninterrupted run, plus
// acceptance coverage for the -soak and -max-trial-wall flags.

import (
	"bytes"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// cycleArgs is the shared seeded workload: one quick cycle over the
// three-baseline catalog in the highly-constrained setting (big enough
// that SIGKILL delays land mid-cycle).
func cycleArgs(seed string) []string {
	return []string{
		"-cycles", "1", "-setting", "high", "-workers", "2", "-seed", seed,
		"-services", "iPerf (Reno),iPerf (Cubic),iPerf (BBR)",
	}
}

// cycleOutput strips everything before the first cycle banner, leaving
// only the deterministic report (resume/recovery preambles differ
// between runs by construction).
func cycleOutput(t *testing.T, out []byte) string {
	t.Helper()
	s := string(out)
	i := strings.Index(s, "=== cycle")
	if i < 0 {
		t.Fatalf("no cycle banner in output:\n%s", s)
	}
	return s[i:]
}

// TestEndToEndKillLoop repeatedly SIGKILLs a journaled run at
// randomized (seed-logged) points until one attempt completes; the
// survivor's report and fault ledger must be byte-identical to an
// uninterrupted run — kill -9 loses at most the in-flight trial, and
// the journal-reconciled resume replays everything else.
func TestEndToEndKillLoop(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()

	// Reference: uninterrupted, no durability files.
	refFaults := filepath.Join(dir, "ref-faults.jsonl")
	ref := exec.Command(bin, append(cycleArgs("23"), "-faults-out", refFaults)...)
	refOut, err := ref.CombinedOutput()
	if err != nil {
		t.Fatalf("reference run: %v\n%s", err, refOut)
	}

	killSeed := time.Now().UnixNano()
	if env := os.Getenv("PRUDENTIA_KILL_SEED"); env != "" {
		killSeed, err = strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("PRUDENTIA_KILL_SEED: %v", err)
		}
	}
	t.Logf("kill-point seed: %d (re-run with PRUDENTIA_KILL_SEED=%d)", killSeed, killSeed)
	rng := rand.New(rand.NewSource(killSeed))

	ckpt := filepath.Join(dir, "state.json")
	wal := filepath.Join(dir, "trials.wal")
	faults := filepath.Join(dir, "faults.jsonl")
	args := append(cycleArgs("23"),
		"-checkpoint", ckpt, "-resume", "-journal", wal, "-faults-out", faults)

	kills := 0
	var final []byte
	for attempt := 0; ; attempt++ {
		if attempt >= 60 {
			t.Fatalf("no attempt completed after %d kills", kills)
		}
		cmd := exec.Command(bin, args...)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		// The kill window starts well inside the cycle and widens with
		// each attempt, so early attempts reliably die mid-cycle and the
		// journal-accelerated later attempts get room to finish.
		delay := time.Duration(40+rng.Intn(60+attempt*120)) * time.Millisecond
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run failed (attempt %d): %v\n%s", attempt, err, out.Bytes())
			}
			final = out.Bytes()
		case <-time.After(delay):
			cmd.Process.Kill()
			<-done
			kills++
			continue
		}
		break
	}
	if kills == 0 {
		t.Fatal("cycle completed before any kill fired; widen the workload")
	}
	t.Logf("survived %d SIGKILLs before completing", kills)

	if got, want := cycleOutput(t, final), cycleOutput(t, refOut); got != want {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
	got, err := os.ReadFile(faults)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refFaults)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed fault ledger differs from uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
	// Converged: both durability files were cleaned up by the completed cycle.
	for _, p := range []string{ckpt, wal} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s not removed after completed cycle", p)
		}
	}
}

// TestEndToEndSoak runs consecutive cycles in soak mode and requires
// the per-cycle breaker status line.
func TestEndToEndSoak(t *testing.T) {
	bin := buildBinary(t)
	cmd := exec.Command(bin,
		"-soak", "2", "-setting", "high", "-workers", "2", "-seed", "9",
		"-services", "iPerf (Cubic),iPerf (BBR)")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("soak run: %v\n%s", err, out)
	}
	for _, want := range []string{
		"soak: cycle 1/2 complete; breakers: all closed",
		"soak: cycle 2/2 complete; breakers: all closed",
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("soak output missing %q:\n%s", want, out)
		}
	}
}

// TestEndToEndReaperFlag arms -max-trial-wall with an impossible budget:
// every trial is reaped, every pair quarantined (××), and the fault
// ledger records the typed reap failures — the cycle still completes.
func TestEndToEndReaperFlag(t *testing.T) {
	bin := buildBinary(t)
	faults := filepath.Join(t.TempDir(), "faults.jsonl")
	cmd := exec.Command(bin, append(cycleArgs("4"),
		"-max-trial-wall", "1e-9", "-faults-out", faults)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("reaper run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "××") {
		t.Fatalf("reaped cycle must quarantine pairs (××):\n%s", out)
	}
	data, err := os.ReadFile(faults)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"reap"`) {
		t.Fatalf("fault ledger has no reap events:\n%s", data)
	}
}
