// Command prudentia runs the continuous fairness watchdog: it cycles
// through all service pairs in both standing network settings, applying
// the paper's trial-escalation protocol, and prints the MmF-share,
// utilization, loss, and queueing-delay heatmaps after every cycle —
// the terminal analogue of internetfairness.net.
//
// The watchdog is crash-safe: with -checkpoint it flushes completed-pair
// state to disk after every pair, SIGINT/SIGTERM stop it gracefully with
// the checkpoint intact, and -resume picks the cycle back up, skipping
// already-completed pairs while producing results identical to an
// uninterrupted run. -journal adds a write-ahead trial journal below the
// checkpoint: every executed attempt is fsynced as it completes, so even
// kill -9 loses at most the single in-flight trial and the next run
// replays the journaled remainder instead of re-simulating it.
// -max-trial-wall arms the hung-trial reaper (wall-clock budget per
// trial), -soak N runs N consecutive cycles carrying circuit-breaker
// state across them, and -chaos arms the deterministic fault-injection
// plan (link flaps, bandwidth sags, client stalls, trial panics/errors,
// result corruption, service brownouts) to exercise those defenses.
//
// -adaptive replaces the fixed trial protocol with adaptive budgets
// (docs/ADAPTIVE.md): a coarse screening pass ranks pairs by predicted
// unfairness and allocates the cycle's trial budget depth-first to the
// most contested pairs, and a sequential stopper (-ci-width,
// -min-trials) ends each pair's trials the moment its fairness verdict
// is statistically settled — same verdicts, typically ≥30% fewer
// trials. -fixed-trials forces the fixed protocol back on (its output
// is byte-identical to a run without -adaptive), and a -resume from a
// pre-adaptive checkpoint falls back to it automatically.
//
// Per-pair statistics accumulate in O(1) mergeable quantile sketches by
// default (docs/SKETCHES.md): bit-identical medians/CIs at the standard
// trial budgets with constant memory per pair at any trial count.
// -exact-stats retains the raw per-trial ledger instead (the escape
// hatch; reports are byte-identical either way). -sweep replaces the
// watchdog cycles with a rate × RTT × queue × CCA parameter grid and
// writes consolidated TSV/JSON artifacts (-sweep-rates, -sweep-rtts,
// -sweep-queues, -sweep-ccas, -sweep-out; scripts/sweep.sh wraps it).
//
// -workers N (default GOMAXPROCS) fans calibrations and pair trials out
// to a worker pool; every trial owns a private simulation engine and
// emulated testbed, and completed work is merged in canonical order, so
// heatmaps, checkpoints, and the fault ledger are byte-identical for any
// worker count. The first SIGINT drains the trials in flight before
// flushing the checkpoint; a resumed parallel run replays identically.
//
// Usage:
//
//	prudentia -cycles 1 -quick
//	prudentia -cycles 0            # run forever (live watchdog mode)
//	prudentia -workers 8           # parallel matrix, identical output
//	prudentia -checkpoint state.json            # crash-safe cycles
//	prudentia -checkpoint state.json -resume    # continue after a kill
//	prudentia -checkpoint s.json -journal t.wal # journal: kill -9 safe
//	prudentia -soak 5 -max-trial-wall 50        # long-run supervision
//	prudentia -chaos -v                         # fault-injection run
//	prudentia -submit https://my.service/page -code <access code>
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"prudentia/internal/chaos"
	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/obs"
	"prudentia/internal/report"
	"prudentia/internal/services"
	"prudentia/internal/trace"
)

func main() {
	var (
		cycles     = flag.Int("cycles", 1, "number of full all-pairs cycles (0 = run forever)")
		quick      = flag.Bool("quick", true, "compressed trials (60s, 3-9 per pair) instead of the paper protocol")
		submit     = flag.String("submit", "", "submit a custom URL for testing (Appendix A)")
		code       = flag.String("code", "", "access code for -submit")
		setting    = flag.String("setting", "both", "highly | moderately | both")
		verbose    = flag.Bool("v", false, "per-pair progress output")
		checkpoint = flag.String("checkpoint", "", "checkpoint file: flush cycle state after every pair")
		resume     = flag.Bool("resume", false, "resume the interrupted cycle from -checkpoint")
		chaosOn    = flag.Bool("chaos", false, "arm the deterministic fault-injection plan (all classes)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0),
			"parallel trial workers for calibrations and the pair matrix (1 = serial; output is byte-identical for any value)")
		seed       = flag.Uint64("seed", 0, "base seed for the deterministic trial-seed sequence (0 = default)")
		svcFilter  = flag.String("services", "", "comma-separated service names: restrict the catalog (exact match)")
		metricsOut = flag.String("metrics-out", "", "write the metric snapshot here after every cycle (.json = JSON, else Prometheus text)")
		timeline   = flag.String("timeline", "", "append the JSONL cycle timeline (trial/pair/checkpoint events) to this file")
		manifest   = flag.String("manifest", "", "write the run manifest here after every cycle (default: manifest.json beside -timeline)")
		pprofDir   = flag.String("pprof-dir", "", "capture cycle<N>.cpu.pprof and cycle<N>.heap.pprof profiles into this directory")
		faultsOut  = flag.String("faults-out", "", "write the robustness fault ledger as JSONL here at exit")
		journal    = flag.String("journal", "", "write-ahead trial journal: append every executed attempt (fsynced) so a crashed cycle loses at most the in-flight trial and replays the rest")
		maxWall    = flag.Float64("max-trial-wall", 0, "hung-trial reaper: wall-clock budget factor per trial (emulated duration × factor; 0 = off)")
		adaptive   = flag.Bool("adaptive", false, "adaptive trial budgets: coarse screening ranks pairs, the sequential stopper ends each pair's trials once its verdict is stable")
		ciWidth    = flag.Float64("ci-width", 0, "adaptive: stop a pair when the 95% CI on both slots' share medians is at most this many share points wide (0 = default 10)")
		minTrials  = flag.Int("min-trials", 0, "adaptive: floor below which no pair stops early (0 = default 2)")
		fixedTrial = flag.Bool("fixed-trials", false, "force the fixed trial protocol even with -adaptive (the golden/acceptance escape hatch; output is byte-identical to a run without -adaptive)")
		soak       = flag.Int("soak", 0, "soak mode: run N consecutive cycles carrying circuit-breaker state across cycles, printing breaker status after each (overrides -cycles)")
		exactStats = flag.Bool("exact-stats", false, "retain the raw per-trial ledger instead of O(1) mergeable quantile sketches (the statistics escape hatch; reports are byte-identical either way at the standard trial budgets)")

		// Sweep mode: a rate × RTT × queue × CCA parameter grid instead
		// of watchdog cycles, emitting consolidated TSV/JSON artifacts
		// (see cmd/prudentia/sweep.go and scripts/sweep.sh).
		sweepMode   = flag.Bool("sweep", false, "sweep mode: run the pair matrix of -sweep-ccas at every rate × RTT × queue grid point and write <-sweep-out>.tsv/.json instead of running cycles")
		sweepRates  = flag.String("sweep-rates", "8,50", "sweep: comma-separated bottleneck rates in Mbps")
		sweepRTTs   = flag.String("sweep-rtts", "25,50,100", "sweep: comma-separated round-trip times in ms")
		sweepQueues = flag.String("sweep-queues", "64,256", "sweep: comma-separated drop-tail queue capacities in packets")
		sweepCCAs   = flag.String("sweep-ccas", "iPerf (Cubic),iPerf (BBR),iPerf (Reno)", "sweep: comma-separated catalog service names forming the pair matrix at each grid point")
		sweepOut    = flag.String("sweep-out", "sweep", "sweep: output path prefix (writes <prefix>.tsv and <prefix>.json)")

		// Serve mode: long-running daemon — campaign scheduler plus a
		// read-optimized HTTP API over each completed cycle's artifacts
		// (internal/serve; see README "Serving").
		serveMode  = flag.Bool("serve", false, "daemon mode: run continuous cycles and serve reports/heatmaps/metrics over HTTP (-serve-addr); -cycles bounds the campaign (0 = forever)")
		serveAddr  = flag.String("serve-addr", "127.0.0.1:9080", "serve: listen address (use :0 for an ephemeral port with -serve-addr-file)")
		serveFile  = flag.String("serve-addr-file", "", "serve: write the bound address to this file once listening")
		cycleEvery = flag.Duration("cycle-interval", 10*time.Minute, "serve: pause between cycle starts (jittered per cycle; <0 = none)")
		history    = flag.Int("history", 8, "serve: completed cycles kept addressable via ?cycle=N")
		subsMax    = flag.Int("submissions-max", 64, "serve: cap on queued POST /api/v1/submissions across all tenants")
		serveDir   = flag.String("serve-dir", "", "serve: durable state directory (submission WAL, per-cycle artifacts, and — unless -checkpoint/-journal override — the cycle checkpoint and trial journal); a restarted daemon rehydrates its history, replays unapplied submissions, and resumes the interrupted cycle")
		chaosDisk  = flag.Uint64("chaos-disk", 0, "chaos: arm the seed-deterministic disk-fault plan (injected ENOSPC, torn-tail fsyncs, fsync stalls) on the durable writers with this seed (0 = off)")

		// Fleet mode: one coordinator shards the pair matrix over N
		// worker processes (prudentia.fleet/1 over TCP); the merged
		// report is byte-identical to a serial run. Coordinator and
		// workers must share the experiment flags above — the handshake
		// fingerprint rejects divergent workers.
		coordMode   = flag.Bool("coordinator", false, "fleet: shard the pair matrix over TCP workers (-listen, -expect-workers)")
		listenAddr  = flag.String("listen", "127.0.0.1:9070", "fleet coordinator listen address (use :0 for an ephemeral port with -listen-addr-file)")
		listenFile  = flag.String("listen-addr-file", "", "fleet: write the coordinator's bound address to this file once listening")
		expectWork  = flag.Int("expect-workers", 1, "fleet: wait for this many workers before the first cycle")
		partitions  = flag.Int("chaos-partitions", 0, "fleet chaos: sever up to N worker assignments (coordinator-side; the report stays byte-identical)")
		workerMode  = flag.Bool("worker", false, "fleet: execute pairs for a coordinator instead of running cycles (-connect)")
		connectAddr = flag.String("connect", "", "fleet worker: coordinator address (host:port)")
		workerName  = flag.String("worker-name", "", "fleet worker: stable name for lease accounting (default host-pid)")
	)
	flag.Parse()

	w := core.NewWatchdog()
	w.Workers = *workers
	switch {
	case strings.HasPrefix(*setting, "high"):
		w.Settings = []netem.Config{netem.HighlyConstrained()}
	case strings.HasPrefix(*setting, "mod"):
		w.Settings = []netem.Config{netem.ModeratelyConstrained()}
	}
	if *quick {
		w.Opts = core.QuickOptions(w.Settings[0])
	}
	if *seed != 0 {
		w.Opts.BaseSeed = *seed
	}
	if *chaosOn {
		plan := chaos.Default()
		w.Opts.Chaos = &plan
	}
	if *chaosDisk != 0 {
		// Disk faults ride the durable writers (checkpoint, trial
		// journal, submission WAL), not the trials, so they compose with
		// -chaos and never perturb the measurement results themselves.
		w.DiskChaos = chaos.DefaultDiskPlan(*chaosDisk)
	}
	w.Opts.WallBudget = *maxWall
	if *adaptive && !*fixedTrial {
		w.Opts.Adaptive = &core.AdaptiveOptions{
			CIWidthPct: *ciWidth,
			MinTrials:  *minTrials,
		}
	}
	w.Opts.SketchStats = !*exactStats
	w.JournalPath = *journal
	soakMode := *soak > 0
	if soakMode {
		*cycles = *soak
	}
	if *svcFilter != "" {
		var keep []services.Service
		for _, name := range strings.Split(*svcFilter, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, svc := range w.Services {
				if svc.Name() == name {
					keep = append(keep, svc)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "prudentia: -services: unknown service %q\n", name)
				os.Exit(1)
			}
		}
		w.Services = keep
	}
	if *verbose {
		w.Progress = func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		}
	}

	// Sweep mode: run the parameter grid and exit — no cycles, no
	// checkpoints; the artifacts are the deliverable.
	if *sweepMode {
		cfg := sweepConfig{
			CCAs:    splitTrim(*sweepCCAs),
			Out:     *sweepOut,
			Workers: *workers,
			Seed:    *seed,
			Exact:   *exactStats,
			Verbose: *verbose,
		}
		var err error
		if cfg.RatesMbps, err = parseSweepFloats("sweep-rates", *sweepRates); err == nil {
			if cfg.RTTsMs, err = parseSweepFloats("sweep-rtts", *sweepRTTs); err == nil {
				cfg.Queues, err = parseSweepInts("sweep-queues", *sweepQueues)
			}
		}
		if err == nil {
			err = runSweep(cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Fleet worker mode: serve pairs for a coordinator and exit. The
	// watchdog object is fully configured by this point, so the worker
	// derives options — and therefore trial seeds — exactly as the
	// coordinator's serial path would. Signals keep their default
	// (terminate) behaviour: a killed worker's pairs are re-dispatched.
	if *workerMode {
		if *submit != "" {
			if err := w.Submit(*submit, *code); err != nil {
				fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
				os.Exit(1)
			}
		}
		runWorker(w, *connectAddr, *workerName, *workers,
			fleetFingerprint(w, *quick, *chaosOn, *maxWall))
	}

	ledger := &trace.FaultLedger{}
	w.OnFault = ledger.Record

	// Observability sinks: metric registry, JSONL timeline, run manifest,
	// fault-ledger export. All optional; the watchdog runs uninstrumented
	// (nil Obs) when no flag asks for them.
	var reg *obs.Registry
	var tl *obs.Timeline
	manifestPath := *manifest
	if manifestPath == "" && *timeline != "" {
		manifestPath = filepath.Join(filepath.Dir(*timeline), "manifest.json")
	}
	if *metricsOut != "" || *timeline != "" || manifestPath != "" || *serveMode {
		// The daemon always carries a registry: /metrics is part of its
		// API surface.
		reg = obs.NewRegistry()
	}
	if *timeline != "" {
		var err error
		tl, err = obs.CreateTimeline(*timeline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
			os.Exit(1)
		}
		defer tl.Close()
	}
	if reg != nil || tl != nil {
		w.Obs = core.NewInstruments(reg, tl)
	}
	// exportObs flushes the metric snapshot and manifest; called after
	// every cycle (and on interrupt, with cr == nil) so a killed watchdog
	// still leaves reconciliation artifacts behind.
	exportObs := func(cr *core.CycleResult) {
		if *metricsOut != "" {
			if err := writeMetrics(*metricsOut, reg.Snapshot()); err != nil {
				fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
			}
		}
		if manifestPath != "" {
			if err := w.BuildManifest(cr, reg).Write(manifestPath); err != nil {
				fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
			}
		}
	}
	writeFaults := func() {
		if *faultsOut == "" {
			return
		}
		f, err := os.Create(*faultsOut)
		if err == nil {
			err = trace.WriteFaultsJSONL(f, ledger.Snapshot())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: faults-out: %v\n", err)
		}
	}
	defer writeFaults()

	// Graceful shutdown: the first SIGINT/SIGTERM requests a stop at the
	// next trial boundary (the checkpoint is flushed after every pair, so
	// nothing completed is lost); a second signal kills immediately.
	var stop atomic.Bool
	stopped := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		stop.Store(true)
		close(stopped)
		fmt.Fprintln(os.Stderr, "prudentia: stopping at next trial boundary (signal again to kill)")
		<-sigc
		os.Exit(1)
	}()
	w.Interrupt = stop.Load

	if *checkpoint != "" {
		w.CheckpointPath = *checkpoint
		if *resume {
			found, err := w.LoadCheckpoint()
			if err != nil {
				fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
				os.Exit(1)
			}
			if found {
				fmt.Printf("resuming interrupted cycle from %s\n", *checkpoint)
				if w.Opts.Adaptive != nil && !w.StagedCheckpoint().HasBudgetState() {
					// Pre-adaptive checkpoints carry no budget
					// allocations; re-screening could change the
					// interrupted run's stopping decisions, so finish
					// this run with fixed trials instead of erroring.
					fmt.Fprintln(os.Stderr,
						"prudentia: checkpoint predates adaptive budgets; falling back to -fixed-trials for this run")
					w.Opts.Adaptive = nil
				}
			} else {
				fmt.Printf("no checkpoint at %s; starting fresh\n", *checkpoint)
			}
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "prudentia: -resume requires -checkpoint")
		os.Exit(1)
	}

	if *submit != "" {
		if err := w.Submit(*submit, *code); err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("accepted submission %q; it joins the catalog for this run\n", *submit)
	}

	// Fleet coordinator mode: shard each setting's pair matrix over the
	// connected workers. Calibrations and canary probes stay local (they
	// are cheap and feed per-cycle admission decisions); only the pair
	// matrices fan out.
	if *coordMode {
		stopFleet := startCoordinator(w, ledger, reg, *listenAddr, *listenFile,
			*expectWork, *partitions, fleetFingerprint(w, *quick, *chaosOn, *maxWall))
		defer stopFleet()
	}

	// Serve mode: hand the fully configured engine (checkpoint, journal,
	// chaos, fleet coordinator — all compose) to the daemon and block
	// until a signal drains it. Placed after the coordinator block so
	// `-serve -coordinator` serves fleet-backed cycles.
	if *serveMode {
		if *serveDir != "" {
			// The state directory is the one-stop durability root: the
			// engine's checkpoint and trial journal default into it so a
			// plain `-serve -serve-dir d` restart resumes an interrupted
			// cycle without further flags.
			if w.CheckpointPath == "" {
				w.CheckpointPath = filepath.Join(*serveDir, "checkpoint.json")
			}
			if w.JournalPath == "" {
				w.JournalPath = filepath.Join(*serveDir, "trials.wal")
			}
		}
		err := runServe(w, ledger, reg, serveOptions{
			addr:           *serveAddr,
			addrFile:       *serveFile,
			cycleInterval:  *cycleEvery,
			history:        *history,
			submissionsMax: *subsMax,
			maxCycles:      *cycles,
			stateDir:       *serveDir,
		}, stopped, exportObs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for cycle := 1; *cycles == 0 || cycle <= *cycles; cycle++ {
		fmt.Printf("=== cycle %d (catalog: %d services) ===\n", cycle, len(w.Services))
		stopProfiles, perr := startProfiles(*pprofDir, cycle)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "prudentia: %v\n", perr)
			os.Exit(1)
		}
		cr, err := w.RunCycle()
		stopProfiles()
		if errors.Is(err, core.ErrInterrupted) {
			exportObs(nil)
			if *checkpoint != "" {
				fmt.Printf("interrupted; cycle state saved to %s (resume with -resume)\n", *checkpoint)
			} else {
				fmt.Println("interrupted (no -checkpoint set; cycle state discarded)")
			}
			return
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: cycle %d: %v\n", cycle, err)
			os.Exit(1)
		}
		exportObs(cr)
		for si, res := range cr.PerSetting {
			printCycle(res, cr, si, w.Settings[si], w.Services)
		}
		if s := ledger.Summary(); s != "" {
			fmt.Printf("fault ledger: %s\n\n", s)
		}
		if soakMode {
			fmt.Printf("soak: cycle %d/%d complete; breakers: %s\n\n",
				cycle, *cycles, breakerSummary(w.Breakers))
		}
		if *verbose && reg != nil {
			fmt.Println(report.MetricsSummary(reg.Snapshot()))
		}
	}
}

// breakerSummary renders the circuit-breaker set for soak-mode output.
func breakerSummary(bs *core.BreakerSet) string {
	infos := bs.Status()
	if len(infos) == 0 {
		return "all closed"
	}
	parts := make([]string, 0, len(infos))
	for _, bi := range infos {
		parts = append(parts, fmt.Sprintf("%s=%s(%.1f)", bi.Service, bi.State, bi.Score))
	}
	return strings.Join(parts, " ")
}

// writeMetrics stores a snapshot at path, choosing the format by
// extension: .json gets the JSON exposition, anything else the
// Prometheus text format.
func writeMetrics(path string, snap obs.Snapshot) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = snap.WriteJSON(f)
	} else {
		err = snap.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// startProfiles begins a CPU profile for one cycle and returns a stop
// function that finishes it and captures a heap profile. With dir empty
// it is a no-op.
func startProfiles(dir string, cycle int) (func(), error) {
	if dir == "" {
		return func() {}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, fmt.Sprintf("cycle%d.cpu.pprof", cycle)))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cpu.Close()
		heap, err := os.Create(filepath.Join(dir, fmt.Sprintf("cycle%d.heap.pprof", cycle)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: heap profile: %v\n", err)
			return
		}
		runtime.GC() // get up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(heap); err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: heap profile: %v\n", err)
		}
		heap.Close()
	}, nil
}

// printCycle renders one setting's text block through the shared
// byte-stable renderer (internal/report), which the serving daemon's
// /api/v1/report.txt serves verbatim — the CI serve gate byte-compares
// the two, so this must never grow a private rendering path.
func printCycle(res *core.MatrixResult, cr *core.CycleResult, si int, cfg netem.Config, svcs []services.Service) {
	fmt.Print(report.CycleText(res, cr, si, cfg, svcs))
}
