// Command prudentia runs the continuous fairness watchdog: it cycles
// through all service pairs in both standing network settings, applying
// the paper's trial-escalation protocol, and prints the MmF-share,
// utilization, loss, and queueing-delay heatmaps after every cycle —
// the terminal analogue of internetfairness.net.
//
// Usage:
//
//	prudentia -cycles 1 -quick
//	prudentia -cycles 0            # run forever (live watchdog mode)
//	prudentia -submit https://my.service/page -code <access code>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/report"
	"prudentia/internal/services"
	"prudentia/internal/stats"
)

func main() {
	var (
		cycles  = flag.Int("cycles", 1, "number of full all-pairs cycles (0 = run forever)")
		quick   = flag.Bool("quick", true, "compressed trials (60s, 3-9 per pair) instead of the paper protocol")
		submit  = flag.String("submit", "", "submit a custom URL for testing (Appendix A)")
		code    = flag.String("code", "", "access code for -submit")
		setting = flag.String("setting", "both", "highly | moderately | both")
		verbose = flag.Bool("v", false, "per-pair progress output")
	)
	flag.Parse()

	w := core.NewWatchdog()
	switch {
	case strings.HasPrefix(*setting, "high"):
		w.Settings = []netem.Config{netem.HighlyConstrained()}
	case strings.HasPrefix(*setting, "mod"):
		w.Settings = []netem.Config{netem.ModeratelyConstrained()}
	}
	if *quick {
		w.Opts = core.QuickOptions(w.Settings[0])
	}
	if *verbose {
		w.Progress = func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		}
	}

	if *submit != "" {
		if err := w.Submit(*submit, *code); err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("accepted submission %q; it joins the catalog for this run\n", *submit)
	}

	for cycle := 1; *cycles == 0 || cycle <= *cycles; cycle++ {
		fmt.Printf("=== cycle %d (catalog: %d services) ===\n", cycle, len(w.Services))
		cr, err := w.RunCycle()
		if err != nil {
			fmt.Fprintf(os.Stderr, "prudentia: cycle %d: %v\n", cycle, err)
			os.Exit(1)
		}
		for si, res := range cr.PerSetting {
			cfg := w.Settings[si]
			label := fmt.Sprintf("%.0f Mbps", float64(cfg.RateBps)/1e6)
			printCycle(res, cr, si, cfg, label, w.Services)
		}
	}
}

func printCycle(res *core.MatrixResult, cr *core.CycleResult, si int, cfg netem.Config, label string, svcs []services.Service) {
	fmt.Println(report.Heatmap(
		fmt.Sprintf("MmF share %% (incumbent = column) — %s", label),
		res.Names,
		func(inc, cont string) (float64, bool) { return res.SharePct(inc, cont) },
		".0f"))
	fmt.Println(report.Heatmap(
		fmt.Sprintf("link utilization %% — %s", label),
		res.Names,
		func(inc, cont string) (float64, bool) {
			v, ok := res.Utilization(inc, cont)
			return 100 * v, ok
		},
		".0f"))
	fmt.Println(report.Heatmap(
		fmt.Sprintf("loss rate %% — %s", label),
		res.Names,
		func(inc, cont string) (float64, bool) {
			v, ok := res.LossRate(inc, cont)
			return 100 * v, ok
		},
		".1f"))
	fmt.Println(report.Heatmap(
		fmt.Sprintf("mean queueing delay ms — %s", label),
		res.Names,
		func(inc, cont string) (float64, bool) { return res.QueueDelayMs(inc, cont) },
		".0f"))

	losing := res.LosingShares()
	fmt.Printf("summary (%s): losing services median %.0f%% of MmF share; self-pairs mean %.0f%%\n",
		label, stats.Median(losing), stats.Mean(res.SelfShares()))
	if throttled := cr.ThrottledServices(si, cfg, svcs, 0.5); len(throttled) > 0 {
		fmt.Printf("throttle watch: %v achieved <50%% of the link solo\n", throttled)
	}
	var unstable []string
	for _, a := range res.Names {
		for _, b := range res.Names {
			if p, _, ok := res.Cell(a, b); ok && p.Unstable && a <= b {
				unstable = append(unstable, a+" vs "+b)
			}
		}
	}
	if len(unstable) > 0 {
		fmt.Printf("instability watch (Obs 15): %v\n", unstable)
	}
	fmt.Println()
}
