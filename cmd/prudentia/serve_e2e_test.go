package main

// End-to-end acceptance test for serve mode: build the real binary,
// boot the daemon on an ephemeral port, and require the serving
// contract — readiness gating, ETag revalidation, byte-identity between
// the daemon's text report and a batch run at the same seed, submission
// queuing, and graceful SIGTERM drain.

import (
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon boots the serve-mode binary and waits for readiness,
// returning the base URL and a stop function that SIGTERMs and reaps it.
func startDaemon(t *testing.T, bin, dir string, extra ...string) (string, *exec.Cmd, func() error) {
	t.Helper()
	addrFile := filepath.Join(dir, "addr.txt")
	args := append([]string{
		"-serve", "-serve-addr", "127.0.0.1:0", "-serve-addr-file", addrFile,
		"-cycles", "1", "-cycle-interval", "1h",
		"-setting", "high", "-seed", "42", "-workers", "2",
		"-services", "iPerf (Cubic),iPerf (BBR)",
	}, extra...)
	cmd := exec.Command(bin, args...)
	logf, err := os.Create(filepath.Join(dir, "daemon.log"))
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		logf.Close()
	})

	var addr string
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("daemon never wrote its address file")
	}
	base := "http://" + addr
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	stop := func() error {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		return cmd.Wait()
	}
	return base, cmd, stop
}

func TestServeEndToEndBinary(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	base, cmd, _ := startDaemon(t, bin, dir)
	client := &http.Client{Timeout: 10 * time.Second}

	fetch := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp, string(b)
	}

	// ETag revalidation on the JSON report.
	resp, _ := fetch("/api/v1/report")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("Etag")
	req, _ := http.NewRequest(http.MethodGet, base+"/api/v1/report", nil)
	req.Header.Set("If-None-Match", etag)
	r2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", r2.StatusCode)
	}

	// The daemon's text report is byte-identical to a batch run at the
	// same seed (stdout filtered to the report block).
	_, daemonTxt := fetch("/api/v1/report.txt")
	batch := exec.Command(bin,
		"-cycles", "1", "-setting", "high", "-seed", "42", "-workers", "2",
		"-services", "iPerf (Cubic),iPerf (BBR)")
	out, err := batch.CombinedOutput()
	if err != nil {
		t.Fatalf("batch run: %v\n%s", err, out)
	}
	if i := strings.Index(string(out), "=== cycle"); i < 0 {
		t.Fatalf("batch output has no cycle banner:\n%s", out)
	} else if batchTxt := string(out[i:]); batchTxt != daemonTxt {
		t.Errorf("daemon report.txt != batch stdout:\n--- daemon\n%s\n--- batch\n%s", daemonTxt, batchTxt)
	}

	// Remaining read endpoints respond sensibly.
	if resp, body := fetch("/api/v1/heatmap"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `<table class="heatmap">`) {
		t.Errorf("heatmap = %d", resp.StatusCode)
	}
	if resp, _ := fetch("/api/v1/faults"); resp.StatusCode != http.StatusOK {
		t.Errorf("faults = %d", resp.StatusCode)
	}
	if resp, body := fetch("/api/v1/cycles"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"latest": 1`) {
		t.Errorf("cycles = %d: %s", resp.StatusCode, body)
	}
	if _, body := fetch("/metrics"); !strings.Contains(body, "prudentia_http_requests_total") {
		t.Error("metrics missing http request counters")
	}

	// Submissions queue with a published access code.
	sub, err := client.Post(base+"/api/v1/submissions", "application/json",
		strings.NewReader(`{"url":"https://example.com/page","access_code":"KD4p1Z8Gs1SVPHUrTOVTMNHtvUnMSmvZ","tenant":"e2e"}`))
	if err != nil {
		t.Fatal(err)
	}
	sub.Body.Close()
	if sub.StatusCode != http.StatusAccepted {
		t.Errorf("submission = %d, want 202", sub.StatusCode)
	}

	// Graceful drain: SIGTERM flips /readyz to 503 ("draining") while
	// the listener still accepts — the window load balancers need to
	// stop routing here — then the daemon exits cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	sawDraining := false
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		resp, err := client.Get(base + "/readyz")
		if err != nil {
			break // listener closed; the drain grace is over
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(b), "draining") {
			sawDraining = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDraining {
		t.Error("readyz never reported 503 draining during the SIGTERM drain window")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
	log, err := os.ReadFile(filepath.Join(dir, "daemon.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(log), "serve: drained and stopped") {
		t.Errorf("daemon log missing drain line:\n%s", log)
	}
}
