// Command experiment runs a single Prudentia pair experiment and prints
// its results, optionally exporting the bottleneck queue log, throughput
// series, and drop log (the artifacts the live system publishes for
// every experiment).
//
// Usage:
//
//	experiment -incumbent YouTube -contender Mega -setting highly \
//	           -trials 3 -quick -out /tmp/artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"prudentia/internal/core"
	"prudentia/internal/metrics"
	"prudentia/internal/netem"
	"prudentia/internal/report"
	"prudentia/internal/services"
	"prudentia/internal/sim"
	"prudentia/internal/trace"
)

func main() {
	var (
		incumbent = flag.String("incumbent", "iPerf (Reno)", "incumbent service name (Table 1)")
		contender = flag.String("contender", "", "contender service name (empty = solo run)")
		setting   = flag.String("setting", "moderately", "network setting: highly | moderately")
		bandwidth = flag.Float64("mbps", 0, "custom bottleneck bandwidth in Mbps (overrides -setting)")
		bufferBDP = flag.Int("buffer-bdp", 4, "queue size as a BDP multiple (power-of-two rounded)")
		trials    = flag.Int("trials", 1, "number of trials")
		quick     = flag.Bool("quick", true, "60s trials instead of the paper's 10 minutes")
		seed      = flag.Uint64("seed", 1, "base RNG seed")
		outDir    = flag.String("out", "", "directory for CSV artifacts (queue/rate/drops)")
		list      = flag.Bool("list", false, "list catalog services and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range services.Catalog() {
			fmt.Printf("%-18s %-14s flows=%d cap=%s\n", s.Name(), s.Category(), s.FlowCount(), capStr(s.MaxRateBps()))
		}
		return
	}

	cfg := netem.ModeratelyConstrained()
	if strings.HasPrefix(*setting, "high") {
		cfg = netem.HighlyConstrained()
	}
	if *bandwidth > 0 {
		cfg.RateBps = int64(*bandwidth * 1e6)
	}
	cfg.BufferBDP = *bufferBDP

	inc := services.ByName(*incumbent)
	if inc == nil {
		fatalf("unknown incumbent %q (use -list)", *incumbent)
	}
	var cont services.Service
	if *contender != "" {
		if cont = services.ByName(*contender); cont == nil {
			fatalf("unknown contender %q (use -list)", *contender)
		}
	}

	timing := core.Spec.DefaultTiming
	if *quick {
		timing = core.Spec.QuickTiming
	}

	var shares0, shares1 []float64
	for i := 0; i < *trials; i++ {
		spec := timing(core.Spec{
			Incumbent: inc, Contender: cont, Net: cfg, Seed: *seed + uint64(i),
			SampleQueueEvery: 100 * sim.Millisecond,
			SampleRateEvery:  500 * sim.Millisecond,
		})
		res, err := core.RunTrial(spec)
		if err != nil {
			fatalf("trial %d: %v", i, err)
		}
		fmt.Printf("trial %2d: %7.2f / %7.2f Mbps  share %3.0f%% / %3.0f%%  util %3.0f%%  loss %.3f/%.3f  qdelay %s/%s%s\n",
			i+1, res.Mbps[0], res.Mbps[1], res.SharePct[0], res.SharePct[1],
			100*res.Utilization, res.Loss[0], res.Loss[1],
			report.Ms(res.QueueDelay[0]), report.Ms(res.QueueDelay[1]),
			discardNote(res))
		shares0 = append(shares0, res.SharePct[0])
		shares1 = append(shares1, res.SharePct[1])

		if *outDir != "" && i == 0 {
			if err := export(*outDir, res); err != nil {
				fatalf("export: %v", err)
			}
		}
	}
	fmt.Printf("\n%s vs %s @ %.0f Mbps (queue %d pkts): median share %.0f%% / %.0f%%\n",
		inc.Name(), nameOr(cont, "(solo)"), float64(cfg.RateBps)/1e6,
		netem.QueueSizePackets(cfg.RateBps, cfg.RTT, *bufferBDP),
		median(shares0), median(shares1))
}

func export(dir string, res core.TrialResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	qf, err := os.Create(filepath.Join(dir, "queue.csv"))
	if err != nil {
		return err
	}
	defer qf.Close()
	if err := trace.WriteQueueCSV(qf, res.QueueSeries); err != nil {
		return err
	}
	rf, err := os.Create(filepath.Join(dir, "rate.csv"))
	if err != nil {
		return err
	}
	defer rf.Close()
	if err := trace.WriteRateCSV(rf, res.RateSeries); err != nil {
		return err
	}
	fmt.Printf("artifacts written to %s\n", dir)
	return nil
}

func discardNote(res core.TrialResult) string {
	if res.Discarded {
		return "  [DISCARDED: external loss]"
	}
	return ""
}

func capStr(bps int64) string {
	if bps == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.1fMbps", float64(bps)/1e6)
}

func nameOr(s services.Service, alt string) string {
	if s == nil {
		return alt
	}
	return s.Name()
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiment: "+format+"\n", args...)
	os.Exit(1)
}

var _ = metrics.RatePoint{} // keep the artifact types linked for docs
