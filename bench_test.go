// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation. Each benchmark regenerates the corresponding result —
// workload, parameter sweep, baselines — and prints the same rows or
// series the paper reports. Absolute numbers come from the simulated
// substrate, so the comparison is about shape: who wins, by roughly what
// factor, and where crossovers fall (see EXPERIMENTS.md).
//
// By default the harness runs compressed trials (60–120 virtual seconds,
// 1–3 trials per pair) so a full sweep finishes on a laptop. Set
// PRUDENTIA_FULL=1 to run the paper's actual protocol (10-minute trials,
// 10–30 per pair) — expect hours.
package prudentia

import (
	"fmt"
	"os"
	"testing"

	"prudentia/internal/core"
	"prudentia/internal/metrics"
	"prudentia/internal/netem"
	"prudentia/internal/report"
	"prudentia/internal/services"
	"prudentia/internal/sim"
	"prudentia/internal/stats"
)

// fullRun reports whether the paper-faithful protocol was requested.
func fullRun() bool { return os.Getenv("PRUDENTIA_FULL") == "1" }

// benchTiming is the compressed per-trial timing used by default.
func benchTiming(s core.Spec) core.Spec {
	if fullRun() {
		return s.DefaultTiming()
	}
	s.Duration, s.Warmup, s.Cooldown = 90*sim.Second, 20*sim.Second, 10*sim.Second
	return s
}

// benchOpts is the compressed scheduler protocol used by default.
func benchOpts(net netem.Config) core.SchedulerOptions {
	o := core.PaperOptions(net)
	if !fullRun() {
		o.MinTrials, o.MaxTrials, o.Step = 1, 1, 1
		o.Timing = benchTiming
	}
	return o
}

func multiTrialOpts(net netem.Config, n int) core.SchedulerOptions {
	o := benchOpts(net)
	if !fullRun() {
		o.MinTrials, o.MaxTrials, o.Step = n, n, n
	}
	return o
}

func runPair(b *testing.B, inc, cont string, net netem.Config, opts core.SchedulerOptions) *core.PairOutcome {
	b.Helper()
	out, err := core.RunPair(services.ByName(inc), services.ByName(cont), net, opts)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkTable1SoloCalibration regenerates Table 1's "Max Xput" column:
// every service run solo on an uncontended fast link, exposing intrinsic
// bitrate caps (video, RTC) and external throttles (OneDrive).
func BenchmarkTable1SoloCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := netem.Config{RateBps: 200_000_000, RTT: 50 * sim.Millisecond}
		tab := &report.Table{Header: []string{"Service", "Category", "Flows", "Solo Mbps", "Table-1 cap"}}
		for _, svc := range services.Catalog() {
			if svc.Category() == services.CategoryWeb {
				continue // web pages are load-time, not rate, workloads
			}
			tr, err := core.RunSolo(svc, cfg, 77, benchTiming)
			if err != nil {
				b.Fatal(err)
			}
			cap := "∞"
			if svc.MaxRateBps() > 0 {
				cap = fmt.Sprintf("%.1f", float64(svc.MaxRateBps())/1e6)
			}
			tab.Add(svc.Name(), string(svc.Category()), fmt.Sprint(svc.FlowCount()),
				fmt.Sprintf("%.1f", tr.Mbps[0]), cap)
		}
		fmt.Printf("\n[Table 1] solo calibration on 200 Mbps:\n%s\n", tab)
	}
}

// fig2Matrix runs the all-pairs MmF heatmap for one setting.
func fig2Matrix(b *testing.B, net netem.Config, label string) *core.MatrixResult {
	b.Helper()
	m := &core.Matrix{
		Services: services.ThroughputCatalog(),
		Net:      net,
		Opts:     benchOpts(net),
	}
	res, err := m.Run()
	if err != nil {
		b.Fatal(err)
	}
	heat := report.Heatmap(
		fmt.Sprintf("[Fig 2 %s] median %% of MmF share obtained by incumbent (column) vs contender (row)", label),
		res.Names,
		func(inc, cont string) (float64, bool) { return res.SharePct(inc, cont) },
		".0f")
	fmt.Printf("\n%s\n", heat)

	losing := res.LosingShares()
	selfs := res.SelfShares()
	fmt.Printf("[Obs 1 %s] losing services: median %.0f%% of MmF share; %.0f%% of losers <=90%%; %.0f%% <=50%%; self-pairs mean %.0f%%\n",
		label, stats.Median(losing),
		100*fraction(losing, func(v float64) bool { return v <= 90 }),
		100*fraction(losing, func(v float64) bool { return v <= 50 }),
		stats.Mean(selfs))
	return res
}

func fraction(xs []float64, pred func(float64) bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if pred(x) {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// BenchmarkFig2HeatmapHighly regenerates Fig 2a (8 Mbps all-pairs MmF
// heatmap) plus the Obs 1 summary statistics.
func BenchmarkFig2HeatmapHighly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig2Matrix(b, netem.HighlyConstrained(), "highly-constrained 8 Mbps")
	}
}

// BenchmarkFig2HeatmapModerately regenerates Fig 2b (50 Mbps).
func BenchmarkFig2HeatmapModerately(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig2Matrix(b, netem.ModeratelyConstrained(), "moderately-constrained 50 Mbps")
	}
}

// BenchmarkFig3MultiFlow regenerates Fig 3: how the multi-flow services
// (Mega 5, Netflix 4, Vimeo 2) treat single-flow incumbents in both
// settings — contentious at 8 Mbps where they can fill the link,
// application-limited and benign at 50 Mbps (except Mega).
func BenchmarkFig3MultiFlow(b *testing.B) {
	contenders := []string{"Mega", "Netflix", "Vimeo"}
	incumbents := []string{"iPerf (Reno)", "iPerf (Cubic)", "Dropbox", "YouTube"}
	for i := 0; i < b.N; i++ {
		for _, net := range []struct {
			cfg   netem.Config
			label string
		}{{netem.HighlyConstrained(), "8 Mbps"}, {netem.ModeratelyConstrained(), "50 Mbps"}} {
			tab := &report.Table{Header: append([]string{"incumbent vs ->"}, contenders...)}
			for _, inc := range incumbents {
				row := []string{inc}
				for _, cont := range contenders {
					out := runPair(b, inc, cont, net.cfg, benchOpts(net.cfg))
					row = append(row, fmt.Sprintf("%.0f%%", out.MedianSharePct(0)))
				}
				tab.Add(row...)
			}
			fmt.Printf("\n[Fig 3, %s] incumbent's %% of MmF share vs multi-flow contenders:\n%s\n", net.label, tab)
		}
	}
}

// BenchmarkFig4MegaBurstTimeseries regenerates Fig 4: per-500ms
// throughput of Dropbox vs Mega showing Dropbox ramping into the gaps
// between Mega's batch bursts, contrasted with NewReno which cannot.
func BenchmarkFig4MegaBurstTimeseries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, inc := range []string{"Dropbox", "iPerf (Reno)"} {
			spec := benchTiming(core.Spec{
				Incumbent: services.ByName(inc),
				Contender: services.ByName("Mega"),
				Net:       netem.ModeratelyConstrained(),
				Seed:      42,
			})
			spec.SampleRateEvery = 500 * sim.Millisecond
			res, err := core.RunTrial(spec)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("\n%s", report.RateSeries(
				fmt.Sprintf("[Fig 4] %s vs Mega @50 Mbps (%.1f vs %.1f Mbps):", inc, res.Mbps[0], res.Mbps[1]),
				res.RateSeries, 50, [2]string{inc, "Mega"}))
		}
	}
}

// BenchmarkObs4MegaVsFiveBBR regenerates the Obs 4 comparison: Mega's
// batch scheduling versus five plain iPerf BBR flows, against Dropbox,
// NewReno, and Cubic.
func BenchmarkObs4MegaVsFiveBBR(b *testing.B) {
	net := netem.ModeratelyConstrained()
	for i := 0; i < b.N; i++ {
		tab := &report.Table{Header: []string{"incumbent", "vs 5x iPerf BBR", "vs Mega"}}
		for _, inc := range []string{"Dropbox", "iPerf (Reno)", "iPerf (Cubic)"} {
			vs5 := runPair(b, inc, "iPerf (5xBBR)", net, benchOpts(net))
			vsMega := runPair(b, inc, "Mega", net, benchOpts(net))
			tab.Add(inc,
				fmt.Sprintf("%.0f%%", vs5.MedianSharePct(0)),
				fmt.Sprintf("%.0f%%", vsMega.MedianSharePct(0)))
		}
		fmt.Printf("\n[Obs 4] incumbent %% of MmF share @50 Mbps:\n%s\n", tab)
	}
}

// BenchmarkFig5RTCQoE regenerates Fig 5: Google Meet and Microsoft Teams
// QoE (resolution, FPS, freezes/min, high-delay packet fraction) against
// a set of contenders in both settings.
func BenchmarkFig5RTCQoE(b *testing.B) {
	contenders := []string{"", "YouTube", "Netflix", "Dropbox", "Mega", "iPerf (Cubic)", "iPerf (Reno)"}
	for i := 0; i < b.N; i++ {
		for _, net := range []struct {
			cfg   netem.Config
			label string
		}{{netem.HighlyConstrained(), "8 Mbps"}, {netem.ModeratelyConstrained(), "50 Mbps"}} {
			for _, rtc := range []string{"Google Meet", "Microsoft Teams"} {
				tab := &report.Table{Header: []string{"contender", "res", "fps", "freezes/min", "high-delay"}}
				for _, cont := range contenders {
					var contSvc services.Service
					if cont != "" {
						contSvc = services.ByName(cont)
					}
					spec := benchTiming(core.Spec{
						Incumbent: services.ByName(rtc),
						Contender: contSvc,
						Net:       net.cfg,
						Seed:      17,
					})
					res, err := core.RunTrial(spec)
					if err != nil {
						b.Fatal(err)
					}
					st := res.ServiceStats[0].RTC
					name := cont
					if name == "" {
						name = "(solo)"
					}
					tab.Add(name, fmt.Sprintf("%dp", st.Resolution),
						fmt.Sprintf("%.1f", st.AvgFPS),
						fmt.Sprintf("%.1f", st.FreezesPerMinute),
						fmt.Sprintf("%.0f%%", 100*st.HighDelayFrac))
				}
				fmt.Printf("\n[Fig 5, %s] %s under contention:\n%s\n", net.label, rtc, tab)
			}
		}
	}
}

// BenchmarkFig6PageLoadTimes regenerates Fig 6: page load times of the
// three web pages under contention in both settings.
func BenchmarkFig6PageLoadTimes(b *testing.B) {
	pages := []string{"wikipedia.org", "news.google.com", "youtube.com"}
	contenders := []string{"", "YouTube", "Netflix", "Mega", "Dropbox", "iPerf (Reno)"}
	for i := 0; i < b.N; i++ {
		for _, net := range []struct {
			cfg   netem.Config
			label string
		}{{netem.HighlyConstrained(), "8 Mbps"}, {netem.ModeratelyConstrained(), "50 Mbps"}} {
			tab := &report.Table{Header: append([]string{"page \\ contender"}, func() []string {
				out := make([]string, len(contenders))
				for j, c := range contenders {
					if c == "" {
						out[j] = "(solo)"
					} else {
						out[j] = c
					}
				}
				return out
			}()...)}
			for _, page := range pages {
				row := []string{page}
				for _, cont := range contenders {
					var contSvc services.Service
					if cont != "" {
						contSvc = services.ByName(cont)
					}
					spec := core.Spec{
						Incumbent: services.ByName(page),
						Contender: contSvc,
						Net:       net.cfg,
						Seed:      23,
						// Page loads need wall time: keep trials longer
						// even in compressed mode (loads start at 30s).
						Duration: 200 * sim.Second, Warmup: 5 * sim.Second, Cooldown: 5 * sim.Second,
					}
					if fullRun() {
						spec = spec.DefaultTiming()
					}
					res, err := core.RunTrial(spec)
					if err != nil {
						b.Fatal(err)
					}
					plts := res.ServiceStats[0].Web.PLTs
					if len(plts) == 0 {
						// No load completed within the trial: worse than
						// anything measurable here.
						row = append(row, ">trial")
						continue
					}
					vals := make([]float64, len(plts))
					for k, p := range plts {
						vals[k] = p.Seconds()
					}
					row = append(row, fmt.Sprintf("%.1fs", stats.Median(vals)))
				}
				tab.Add(row...)
			}
			fmt.Printf("\n[Fig 6, %s] median page load time under contention:\n%s\n", net.label, tab)
		}
	}
}

// BenchmarkFig7BandwidthSweep regenerates Fig 7: YouTube's MmF share
// against Dropbox as bottleneck bandwidth sweeps 8→100 Mbps, looking for
// the paper's non-monotonic dip and the return to fairness past the
// point where YouTube's cap fits comfortably.
func BenchmarkFig7BandwidthSweep(b *testing.B) {
	rates := []int64{8, 20, 30, 50, 70, 90, 100}
	for i := 0; i < b.N; i++ {
		tab := &report.Table{Header: []string{"link Mbps", "YouTube Mbps", "YouTube %MmF", "Dropbox Mbps"}}
		for _, mbps := range rates {
			cfg := netem.Config{RateBps: mbps * 1_000_000, RTT: 50 * sim.Millisecond}
			out := runPair(b, "YouTube", "Dropbox", cfg, benchOpts(cfg))
			tab.Add(fmt.Sprint(mbps),
				fmt.Sprintf("%.1f", out.MedianMbps(0)),
				fmt.Sprintf("%.0f%%", out.MedianSharePct(0)),
				fmt.Sprintf("%.1f", out.MedianMbps(1)))
		}
		fmt.Printf("\n[Fig 7] YouTube vs Dropbox across bandwidths:\n%s\n", tab)
	}
}

// BenchmarkFig8BufferSizing regenerates Fig 8: the bottleneck queue
// occupancy of NewReno-vs-Mega at 4xBDP (1024 pkts) and 8xBDP (2048),
// showing the under-utilization cured by the deeper buffer.
func BenchmarkFig8BufferSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mult := range []int{4, 8} {
			cfg := netem.ModeratelyConstrained()
			cfg.BufferBDP = mult
			spec := benchTiming(core.Spec{
				Incumbent: services.ByName("iPerf (Reno)"),
				Contender: services.ByName("Mega"),
				Net:       cfg,
				Seed:      42,
			})
			spec.SampleQueueEvery = 250 * sim.Millisecond
			res, err := core.RunTrial(spec)
			if err != nil {
				b.Fatal(err)
			}
			capPkts := netem.QueueSizePackets(cfg.RateBps, cfg.RTT, mult)
			fmt.Printf("\n%s  reno=%.1f mega=%.1f Mbps util=%.0f%%\n",
				report.QueueSeries(
					fmt.Sprintf("[Fig 8] NewReno vs Mega @50 Mbps, %dxBDP (%d pkt) buffer:", mult, capPkts),
					res.QueueSeries, capPkts),
				res.Mbps[0], res.Mbps[1], 100*res.Utilization)
		}
	}
}

// BenchmarkObs11BufferEffects regenerates Obs 11's numbers: Reno and
// Cubic vs Mega at 4xBDP vs 8xBDP (under-utilization cured, shares jump)
// and Reno-vs-Cubic at 8 Mbps where deeper buffers help Cubic.
func BenchmarkObs11BufferEffects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := &report.Table{Header: []string{"pair", "setting", "4xBDP share/util", "8xBDP share/util"}}
		for _, inc := range []string{"iPerf (Reno)", "iPerf (Cubic)"} {
			row := []string{inc + " vs Mega", "50 Mbps"}
			for _, mult := range []int{4, 8} {
				cfg := netem.ModeratelyConstrained()
				cfg.BufferBDP = mult
				out := runPair(b, inc, "Mega", cfg, benchOpts(cfg))
				row = append(row, fmt.Sprintf("%.0f%% / %.0f%%",
					out.MedianSharePct(0), 100*out.MedianUtilization()))
			}
			tab.Add(row...)
		}
		row := []string{"NewReno vs Cubic", "8 Mbps"}
		for _, mult := range []int{4, 8} {
			cfg := netem.HighlyConstrained()
			cfg.BufferBDP = mult
			out := runPair(b, "iPerf (Reno)", "iPerf (Cubic)", cfg, benchOpts(cfg))
			row = append(row, fmt.Sprintf("%.0f%% / %.0f%%",
				out.MedianSharePct(0), 100*out.MedianUtilization()))
		}
		tab.Add(row...)
		fmt.Printf("\n[Obs 11] buffer sizing effects:\n%s\n", tab)
	}
}

// BenchmarkFig9aDeploymentChanges regenerates Fig 9a: YouTube and Google
// Drive throughput against iPerf BBR (Linux 4.15) in their 2022 vs 2023
// deployments (BBRv3 rollout to Drive, QUIC tuning for YouTube).
func BenchmarkFig9aDeploymentChanges(b *testing.B) {
	net := netem.ModeratelyConstrained()
	for i := 0; i < b.N; i++ {
		tab := &report.Table{Header: []string{"service", "2022 Mbps", "2023 Mbps", "change"}}
		for _, svc := range []struct {
			name string
			y22  services.Service
			y23  services.Service
		}{
			{"YouTube", services.YouTube(services.Year2022), services.YouTube(services.Year2023)},
			{"Google Drive", services.GoogleDrive(services.Year2022), services.GoogleDrive(services.Year2023)},
		} {
			var got [2]float64
			for j, s := range []services.Service{svc.y22, svc.y23} {
				out, err := core.RunPair(s, services.ByName("iPerf (BBR 4.15)"), net, multiTrialOpts(net, 2))
				if err != nil {
					b.Fatal(err)
				}
				got[j] = out.MedianMbps(0)
			}
			change := 0.0
			if got[0] > 0 {
				change = 100 * (got[1] - got[0]) / got[0]
			}
			tab.Add(svc.name, fmt.Sprintf("%.1f", got[0]), fmt.Sprintf("%.1f", got[1]),
				fmt.Sprintf("%+.0f%%", change))
		}
		fmt.Printf("\n[Fig 9a] 2022 vs 2023 deployments vs iPerf BBR (4.15) @50 Mbps:\n%s\n", tab)
	}
}

// BenchmarkFig9bKernelVariants regenerates Fig 9b: BBRv1 as shipped in
// Linux 4.15 vs 5.15 against Dropbox, Google Drive, and YouTube.
func BenchmarkFig9bKernelVariants(b *testing.B) {
	net := netem.ModeratelyConstrained()
	for i := 0; i < b.N; i++ {
		tab := &report.Table{Header: []string{"incumbent", "vs BBR 4.15", "vs BBR 5.15"}}
		for _, inc := range []string{"Dropbox", "Google Drive", "YouTube"} {
			v415 := runPair(b, inc, "iPerf (BBR 4.15)", net, multiTrialOpts(net, 2))
			v515 := runPair(b, inc, "iPerf (BBR)", net, multiTrialOpts(net, 2))
			tab.Add(inc,
				fmt.Sprintf("%.1f Mbps", v415.MedianMbps(0)),
				fmt.Sprintf("%.1f Mbps", v515.MedianMbps(0)))
		}
		fmt.Printf("\n[Fig 9b] incumbent throughput vs BBR kernel variants @50 Mbps:\n%s\n", tab)
	}
}

// BenchmarkTable3Transitivity regenerates Table 3: fairness is not
// transitive — α unfair to β and β unfair to γ does not imply α unfair
// to γ.
func BenchmarkTable3Transitivity(b *testing.B) {
	rows := []struct {
		alpha, beta, gamma string
		net                netem.Config
	}{
		{"Mega", "iPerf (Reno)", "Vimeo", netem.ModeratelyConstrained()},
		{"iPerf (Cubic)", "Dropbox", "iPerf (Reno)", netem.HighlyConstrained()},
		{"iPerf (BBR)", "OneDrive", "YouTube", netem.ModeratelyConstrained()},
	}
	for i := 0; i < b.N; i++ {
		tab := &report.Table{Header: []string{"alpha", "beta", "gamma", "BW", "beta vs alpha", "gamma vs beta", "gamma vs alpha"}}
		for _, r := range rows {
			ba := runPair(b, r.beta, r.alpha, r.net, benchOpts(r.net))
			gb := runPair(b, r.gamma, r.beta, r.net, benchOpts(r.net))
			ga := runPair(b, r.gamma, r.alpha, r.net, benchOpts(r.net))
			tab.Add(r.alpha, r.beta, r.gamma,
				fmt.Sprintf("%.0f", float64(r.net.RateBps)/1e6),
				fmt.Sprintf("%.0f%%", ba.MedianSharePct(0)),
				fmt.Sprintf("%.0f%%", gb.MedianSharePct(0)),
				fmt.Sprintf("%.0f%%", ga.MedianSharePct(0)))
		}
		fmt.Printf("\n[Table 3] non-transitivity of (un)fairness:\n%s\n", tab)
	}
}

// BenchmarkFig10Instability regenerates Fig 10: per-trial throughput
// scatter showing OneDrive's trial-to-trial instability against a stable
// pair.
func BenchmarkFig10Instability(b *testing.B) {
	net := netem.ModeratelyConstrained()
	trials := 8
	if fullRun() {
		trials = 30
	}
	for i := 0; i < b.N; i++ {
		tab := &report.Table{Header: []string{"pair (bold = measured)", "trial Mbps", "IQR"}}
		for _, p := range []struct{ inc, cont string }{
			{"OneDrive", "iPerf (BBR)"},
			{"Dropbox", "iPerf (BBR)"},
		} {
			out := runPair(b, p.inc, p.cont, net, multiTrialOpts(net, trials))
			var series string
			for _, tr := range out.Trials {
				series += fmt.Sprintf("%.0f ", tr.Mbps[0])
			}
			tab.Add(p.inc+" vs "+p.cont, series, fmt.Sprintf("%.1f Mbps", out.IQRSharePct(0)/100*25))
		}
		fmt.Printf("\n[Fig 10] per-trial throughput of the bold service:\n%s\n", tab)
	}
}

// auxHeatmap reruns a reduced matrix and prints one of the appendix
// heatmaps (Figs 11, 12, 13).
func auxHeatmap(b *testing.B, title, format string, cell func(*core.MatrixResult, string, string) (float64, bool)) {
	b.Helper()
	// The appendix heatmaps derive from the same experiments as Fig 2;
	// a reduced service set keeps the default bench affordable.
	names := []string{"YouTube", "Netflix", "Dropbox", "Mega", "iPerf (Cubic)", "iPerf (Reno)"}
	if fullRun() {
		names = nil
		for _, s := range services.ThroughputCatalog() {
			names = append(names, s.Name())
		}
	}
	var svcs []services.Service
	for _, n := range names {
		svcs = append(svcs, services.ByName(n))
	}
	for _, net := range []struct {
		cfg   netem.Config
		label string
	}{{netem.HighlyConstrained(), "8 Mbps"}, {netem.ModeratelyConstrained(), "50 Mbps"}} {
		m := &core.Matrix{Services: svcs, Net: net.cfg, Opts: benchOpts(net.cfg)}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n%s\n", report.Heatmap(
			fmt.Sprintf("%s (%s)", title, net.label), res.Names,
			func(inc, cont string) (float64, bool) { return cell(res, inc, cont) },
			format))
	}
}

// BenchmarkFig11Utilization regenerates the Appendix B.1 link-utilization
// heatmap: ≥95% almost everywhere except Mega and video-video pairs.
func BenchmarkFig11Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		auxHeatmap(b, "[Fig 11] median link utilization %", ".0f",
			func(r *core.MatrixResult, inc, cont string) (float64, bool) {
				v, ok := r.Utilization(inc, cont)
				return 100 * v, ok
			})
	}
}

// BenchmarkFig12LossRates regenerates the Appendix B.2 loss-rate heatmap:
// Mega induces the most loss; BBR-vs-BBR sees none.
func BenchmarkFig12LossRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		auxHeatmap(b, "[Fig 12] median loss rate %", ".1f",
			func(r *core.MatrixResult, inc, cont string) (float64, bool) {
				v, ok := r.LossRate(inc, cont)
				return 100 * v, ok
			})
	}
}

// BenchmarkFig13QueueingDelay regenerates the Appendix B.3 queueing-delay
// heatmap (ms).
func BenchmarkFig13QueueingDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		auxHeatmap(b, "[Fig 13] median mean queueing delay (ms)", ".0f",
			func(r *core.MatrixResult, inc, cont string) (float64, bool) {
				return r.QueueDelayMs(inc, cont)
			})
	}
}

// BenchmarkEngineThroughput measures the raw simulator event rate — the
// ablation baseline for everything above (how much virtual traffic one
// wall-clock second buys).
func BenchmarkEngineThroughput(b *testing.B) {
	var packets int64
	var virtual sim.Time
	for i := 0; i < b.N; i++ {
		spec := core.Spec{
			Incumbent: services.ByName("iPerf (Reno)"),
			Contender: services.ByName("iPerf (Cubic)"),
			Net:       netem.ModeratelyConstrained(),
			Seed:      uint64(i),
			Duration:  20 * sim.Second, Warmup: 2 * sim.Second, Cooldown: 2 * sim.Second,
		}
		res, err := core.RunTrial(spec)
		if err != nil {
			b.Fatal(err)
		}
		packets += int64((res.Mbps[0] + res.Mbps[1]) * 16 / 8 * 1e6 / 1500)
		virtual += 20 * sim.Second
	}
	b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "pkts/s")
	b.ReportMetric(virtual.Seconds()/b.Elapsed().Seconds(), "virtual-s/s")
}

var _ = metrics.MmFShares // linked for documentation cross-reference
