// Package prudentia is the public API of the Prudentia Internet-fairness
// watchdog reproduction: a deterministic testbed that measures how pairs
// of service models share an emulated bottleneck link, following the
// methodology of "Prudentia: Findings of an Internet Fairness Watchdog"
// (SIGCOMM 2024).
//
// Quick start:
//
//	res, err := prudentia.Run(prudentia.Experiment{
//		Incumbent: "YouTube",
//		Contender: "Mega",
//		Setting:   prudentia.HighlyConstrained,
//		Trials:    5,
//	})
//	// res.MedianSharePct[0] is YouTube's median % of its max-min fair
//	// share; res.MedianSharePct[1] is Mega's.
//
// The full catalog of Table 1 service models is available via Services;
// lower-level control (custom network settings, QoE metrics, matrix
// sweeps, the continuous watchdog) is exposed through the Watchdog and
// Matrix types re-exported here.
package prudentia

import (
	"fmt"

	"prudentia/internal/core"
	"prudentia/internal/netem"
	"prudentia/internal/services"
	"prudentia/internal/sim"
)

// Setting names one of the paper's standing network environments.
type Setting string

const (
	// HighlyConstrained is the 8 Mbps bottleneck (§3.1).
	HighlyConstrained Setting = "highly-constrained"
	// ModeratelyConstrained is the 50 Mbps bottleneck (§3.1).
	ModeratelyConstrained Setting = "moderately-constrained"
)

// Config converts a Setting to its netem configuration.
func (s Setting) Config() (netem.Config, error) {
	switch s {
	case HighlyConstrained:
		return netem.HighlyConstrained(), nil
	case ModeratelyConstrained:
		return netem.ModeratelyConstrained(), nil
	default:
		return netem.Config{}, fmt.Errorf("prudentia: unknown setting %q", s)
	}
}

// Services lists the Table 1 catalog names.
func Services() []string {
	var names []string
	for _, s := range services.Catalog() {
		names = append(names, s.Name())
	}
	return names
}

// Experiment describes a pairwise fairness measurement.
type Experiment struct {
	// Incumbent and Contender are catalog names (see Services). An empty
	// Contender runs a solo calibration.
	Incumbent, Contender string
	// Setting selects the bottleneck environment.
	Setting Setting
	// Trials is the number of counted trials (default: the paper's
	// escalation protocol starting at 10; small values pin the count).
	Trials int
	// Quick compresses trials to 60 s (for interactive use); otherwise
	// the paper's 10-minute timing is used.
	Quick bool
	// Seed scopes determinism (default 1).
	Seed uint64
}

// Result summarizes an experiment.
type Result struct {
	Incumbent, Contender string
	// MedianSharePct is each side's median percentage of its max-min
	// fair share (incumbent first) — the paper's headline metric.
	MedianSharePct [2]float64
	// MedianMbps is each side's median measured throughput.
	MedianMbps [2]float64
	// IQRSharePct is the inter-quartile range of the share percentages.
	IQRSharePct [2]float64
	// Trials is the number of counted trials; Unstable marks pairs that
	// failed the paper's CI criterion at the trial cap (Obs 15).
	Trials   int
	Unstable bool
	// Failed marks a quarantined pair: repeated trial errors or panics
	// exhausted the scheduler's retry budget, so the medians above are
	// meaningless and the pair was excluded rather than aborting the run.
	Failed bool
}

// Run executes one experiment using the §3.4 protocol.
func Run(e Experiment) (Result, error) {
	cfg, err := e.Setting.Config()
	if err != nil {
		return Result{}, err
	}
	inc := services.ByName(e.Incumbent)
	if inc == nil {
		return Result{}, fmt.Errorf("prudentia: unknown service %q", e.Incumbent)
	}
	var cont services.Service
	if e.Contender != "" {
		if cont = services.ByName(e.Contender); cont == nil {
			return Result{}, fmt.Errorf("prudentia: unknown service %q", e.Contender)
		}
	}
	opts := core.PaperOptions(cfg)
	if e.Quick {
		opts = core.QuickOptions(cfg)
	}
	if e.Trials > 0 {
		opts.MinTrials, opts.MaxTrials, opts.Step = e.Trials, e.Trials, e.Trials
	}
	if e.Seed != 0 {
		opts.BaseSeed = e.Seed
	}
	out, err := core.RunPair(inc, cont, cfg, opts)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Incumbent: e.Incumbent,
		Contender: e.Contender,
		Trials:    out.Counted(),
		Unstable:  out.Unstable,
		Failed:    out.Failed,
	}
	for slot := 0; slot < 2; slot++ {
		res.MedianSharePct[slot] = out.MedianSharePct(slot)
		res.MedianMbps[slot] = out.MedianMbps(slot)
		res.IQRSharePct[slot] = out.IQRSharePct(slot)
	}
	return res, nil
}

// NewWatchdog returns the continuously-cycling watchdog over the full
// throughput catalog and both standing settings, as deployed at
// internetfairness.net.
func NewWatchdog() *core.Watchdog { return core.NewWatchdog() }

// QuickTiming and DefaultTiming re-export the trial timing presets for
// use with the lower-level core API.
var (
	QuickTiming   = core.Spec.QuickTiming
	DefaultTiming = core.Spec.DefaultTiming
)

// Minute and Second re-export virtual-time units for configuring specs.
const (
	Second = sim.Second
	Minute = sim.Minute
)
